type var = int

type expr =
  | Const of int
  | Var of var
  | Int_field of expr * expr
  | Child of expr * expr
  | Id_of of expr
  | Kid_of of expr
  | Modified of expr
  | Is_null of expr
  | Not of expr
  | N_ints of expr
  | N_children of expr
  | Cond of expr * expr * expr

type meth = M_checkpoint | M_record | M_fold

type stmt =
  | Write of expr
  | Reset_modified of expr
  | If of expr * stmt list * stmt list
  | Let of var * expr * stmt list
  | For of var * expr * expr * stmt list
  | Invoke_virtual of meth * expr
  | Call of meth * expr
  | Call_generic of expr

type program = { checkpoint : stmt list; record : stmt list; fold : stmt list }

let method_body p = function
  | M_checkpoint -> p.checkpoint
  | M_record -> p.record
  | M_fold -> p.fold

let pp_meth ppf m =
  Format.pp_print_string ppf
    (match m with
    | M_checkpoint -> "checkpoint"
    | M_record -> "record"
    | M_fold -> "fold")

let rec pp_expr ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var v -> Format.fprintf ppf "v%d" v
  | Int_field (o, i) -> Format.fprintf ppf "%a.ints[%a]" pp_expr o pp_expr i
  | Child (o, i) -> Format.fprintf ppf "%a.children[%a]" pp_expr o pp_expr i
  | Id_of o -> Format.fprintf ppf "%a.id" pp_expr o
  | Kid_of o -> Format.fprintf ppf "%a.kid" pp_expr o
  | Modified o -> Format.fprintf ppf "%a.modified" pp_expr o
  | Is_null o -> Format.fprintf ppf "(%a == null)" pp_expr o
  | Not e -> Format.fprintf ppf "!%a" pp_expr e
  | N_ints o -> Format.fprintf ppf "%a.n_ints" pp_expr o
  | N_children o -> Format.fprintf ppf "%a.n_children" pp_expr o
  | Cond (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt ppf = function
  | Write e -> Format.fprintf ppf "write(%a);" pp_expr e
  | Reset_modified e -> Format.fprintf ppf "%a.modified = false;" pp_expr e
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_stmts t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_stmts t pp_stmts e
  | Let (v, e, body) ->
      Format.fprintf ppf "@[<v 2>let v%d = %a in {@,%a@]@,}" v pp_expr e
        pp_stmts body
  | For (v, lo, hi, body) ->
      Format.fprintf ppf "@[<v 2>for (v%d = %a; v%d < %a; v%d++) {@,%a@]@,}" v
        pp_expr lo v pp_expr hi v pp_stmts body
  | Invoke_virtual (m, e) ->
      Format.fprintf ppf "%a.%a(); /* virtual */" pp_expr e pp_meth m
  | Call (m, e) -> Format.fprintf ppf "%a(%a);" pp_meth m pp_expr e
  | Call_generic e -> Format.fprintf ppf "checkpoint_generic(%a);" pp_expr e

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf p =
  let m name body =
    Format.fprintf ppf "@[<v 2>%s(v0) {@,%a@]@,}@," name pp_stmts body
  in
  Format.fprintf ppf "@[<v>";
  m "checkpoint" p.checkpoint;
  m "record" p.record;
  m "fold" p.fold;
  Format.fprintf ppf "@]"

let rec stmt_count stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Write _ | Reset_modified _ | Invoke_virtual _ | Call _ | Call_generic _
        ->
          1
      | If (_, t, e) -> 1 + stmt_count t + stmt_count e
      | Let (_, _, body) | For (_, _, _, body) -> 1 + stmt_count body)
    0 stmts

let max_var stmts =
  let m = ref (-1) in
  let seen v = if v > !m then m := v in
  let rec expr = function
    | Const _ -> ()
    | Var v -> seen v
    | Int_field (a, b) | Child (a, b) ->
        expr a;
        expr b
    | Id_of e | Kid_of e | Modified e | Is_null e | Not e | N_ints e
    | N_children e ->
        expr e
    | Cond (a, b, c) ->
        expr a;
        expr b;
        expr c
  in
  let rec stmt = function
    | Write e | Reset_modified e | Invoke_virtual (_, e) | Call (_, e)
    | Call_generic e ->
        expr e
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | Let (v, e, body) ->
        seen v;
        expr e;
        List.iter stmt body
    | For (v, lo, hi, body) ->
        seen v;
        expr lo;
        expr hi;
        List.iter stmt body
  in
  List.iter stmt stmts;
  !m
