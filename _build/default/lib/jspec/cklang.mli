(** The checkpoint-method language: a small imperative IR in which the
    generic checkpointing algorithm is written ({!Generic_method}) and into
    which the partial evaluator ({!Pe}) emits residual, specialized code.

    This plays the role of the C code that JSpec manipulates in the paper's
    pipeline (Fig. 3): generic program + specialization classes → binding
    times → residual program, which is then either interpreted
    ({!Interp}) or compiled to closures ({!Compile}). *)

type var = int
(** Variables are numbered slots. By convention, variable 0 is the method
    parameter (the object being checkpointed). A variable holds either an
    int or an object reference (possibly null); the generic program and all
    residual programs are well-typed by construction. *)

type expr =
  | Const of int
  | Var of var
  | Int_field of expr * expr  (** [o.ints.(i)] *)
  | Child of expr * expr  (** [o.children.(i)], may be null *)
  | Id_of of expr  (** [o.info.id] *)
  | Kid_of of expr  (** [o.klass.kid] *)
  | Modified of expr  (** [o.info.modified], as 0/1 *)
  | Is_null of expr
  | Not of expr
  | N_ints of expr  (** [o.klass.n_ints] *)
  | N_children of expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)

type meth = M_checkpoint | M_record | M_fold

type stmt =
  | Write of expr  (** [d.writeInt(e)] *)
  | Reset_modified of expr
  | If of expr * stmt list * stmt list
  | Let of var * expr * stmt list  (** bind an object-valued expression *)
  | For of var * expr * expr * stmt list
      (** [for v = lo to hi-1]; [hi] is exclusive *)
  | Invoke_virtual of meth * expr
      (** dispatch through the receiver's runtime class *)
  | Call of meth * expr  (** static call to a driver method *)
  | Call_generic of expr
      (** residual-only: checkpoint this subtree with the generic
          incremental algorithm (no-op on null) — the fallback emitted for
          [Unknown] children *)

type program = {
  checkpoint : stmt list;  (** body; parameter is variable 0 *)
  record : stmt list;
  fold : stmt list;
}

val method_body : program -> meth -> stmt list

val pp_meth : Format.formatter -> meth -> unit

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : Format.formatter -> stmt -> unit

val pp_stmts : Format.formatter -> stmt list -> unit

val pp_program : Format.formatter -> program -> unit

val stmt_count : stmt list -> int
(** Total number of statement nodes, a size measure for residual code. *)

val max_var : stmt list -> int
(** Largest variable index mentioned (-1 if none) — sizing for {!Compile}
    environments. *)
