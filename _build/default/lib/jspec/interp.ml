open Ickpt_runtime
open Ickpt_stream
open Cklang

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value = V_int of int | V_obj of Model.obj | V_null

let dispatches = ref 0

let dispatch_count () = !dispatches

(* Method table keyed by (class id, method): every class shares the generic
   bodies, but resolving through the table is what models the cost of a
   virtual call. *)
let resolve table program (o : Model.obj) m =
  incr dispatches;
  let key = (o.Model.klass.Model.kid * 4)
            + (match m with M_checkpoint -> 0 | M_record -> 1 | M_fold -> 2)
  in
  match Hashtbl.find_opt table key with
  | Some body -> body
  | None ->
      let body = method_body program m in
      Hashtbl.add table key body;
      body

let as_int = function
  | V_int n -> n
  | V_obj _ -> error "expected int, got object"
  | V_null -> error "expected int, got null"

let as_obj = function
  | V_obj o -> o
  | V_null -> error "null dereference"
  | V_int _ -> error "expected object, got int"

let truthy v = as_int v <> 0

let bool b = V_int (if b then 1 else 0)

let run ~table ~program ?(n_vars = 0) d root body0 =
  let frame_size =
    (* Frames are small; size by the largest var in any method body. *)
    let m = ref (max (max_var body0) (n_vars - 1)) in
    (match program with
    | Some p ->
        List.iter
          (fun b -> m := max !m (max_var b))
          [ p.checkpoint; p.record; p.fold ]
    | None -> ());
    !m + 1
  in
  let rec exec env stmts = List.iter (stmt env) stmts
  and stmt env = function
    | Write e -> Out_stream.write_int d (as_int (eval env e))
    | Reset_modified e ->
        (as_obj (eval env e)).Model.info.Model.modified <- false
    | If (c, t, e) -> if truthy (eval env c) then exec env t else exec env e
    | Let (v, e, body) ->
        env.(v) <- eval env e;
        exec env body
    | For (v, lo, hi, body) ->
        let lo = as_int (eval env lo) and hi = as_int (eval env hi) in
        for i = lo to hi - 1 do
          env.(v) <- V_int i;
          exec env body
        done
    | Invoke_virtual (m, e) -> (
        let o = as_obj (eval env e) in
        match program with
        | None -> error "virtual call in residual code"
        | Some p -> invoke p o m)
    | Call (m, e) -> (
        match eval env e with
        | V_null -> ()
        | V_int _ -> error "call on int"
        | V_obj o -> (
            match program with
            | Some p -> invoke p o m
            | None -> error "static call in residual code"))
    | Call_generic e -> (
        match eval env e with
        | V_null -> ()
        | V_obj o -> Ickpt_core.Checkpointer.incremental d o
        | V_int _ -> error "generic call on int")
  and invoke p o m =
    let body = resolve table p o m in
    let env = Array.make frame_size V_null in
    env.(0) <- V_obj o;
    exec env body
  and eval env = function
    | Const n -> V_int n
    | Var v -> env.(v)
    | Int_field (o, i) ->
        V_int (as_obj (eval env o)).Model.ints.(as_int (eval env i))
    | Child (o, i) -> (
        match (as_obj (eval env o)).Model.children.(as_int (eval env i)) with
        | None -> V_null
        | Some c -> V_obj c)
    | Id_of o -> V_int (as_obj (eval env o)).Model.info.Model.id
    | Kid_of o -> V_int (as_obj (eval env o)).Model.klass.Model.kid
    | Modified o -> bool (as_obj (eval env o)).Model.info.Model.modified
    | Is_null o -> (
        match eval env o with
        | V_null -> bool true
        | V_obj _ -> bool false
        | V_int _ -> error "is_null on int")
    | Not e -> bool (not (truthy (eval env e)))
    | N_ints o -> V_int (as_obj (eval env o)).Model.klass.Model.n_ints
    | N_children o -> V_int (as_obj (eval env o)).Model.klass.Model.n_children
    | Cond (c, a, b) -> if truthy (eval env c) then eval env a else eval env b
  in
  let env = Array.make frame_size V_null in
  env.(0) <- V_obj root;
  exec env body0

let run_program p d root =
  let table = Hashtbl.create 64 in
  run ~table ~program:(Some p) d root p.checkpoint

let run_residual body ~n_vars d root =
  let table = Hashtbl.create 4 in
  run ~table ~program:None ~n_vars d root body
