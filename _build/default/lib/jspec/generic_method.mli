(** The generic incremental checkpointing algorithm (paper Figure 1),
    expressed in {!Cklang} so that it can be analyzed and specialized.

    Executing {!program} with {!Interp} or {!Compile} is byte-for-byte
    equivalent to {!Ickpt_core.Checkpointer.incremental} on any object graph
    whose classes use the default (preprocessor-generated) [record]/[fold]
    methods. *)

val program : Cklang.program

val checkpoint_param : Cklang.var
(** The parameter variable of each method body (always 0). *)
