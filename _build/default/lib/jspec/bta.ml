type bt = Static | Dynamic

type node = {
  shape : Sclass.shape;
  test_bt : bt;
  recorded : bool;
  traversed : bool;
  children : decision array;
}

and decision =
  | D_skip
  | D_inline of node
  | D_test_inline of node
  | D_generic

let rec analyze (s : Sclass.shape) : node =
  let children =
    Array.map
      (function
        | Sclass.Null_child | Sclass.Clean_opaque -> D_skip
        | Sclass.Exact c ->
            if Sclass.all_clean c then D_skip else D_inline (analyze c)
        | Sclass.Nullable c ->
            if Sclass.all_clean c then D_skip else D_test_inline (analyze c)
        | Sclass.Unknown -> D_generic)
      s.Sclass.children
  in
  let recorded = s.Sclass.status = Sclass.Tracked in
  let traversed =
    recorded
    || Array.exists
         (function D_skip -> false | D_inline _ | D_test_inline _ | D_generic -> true)
         children
  in
  { shape = s;
    test_bt = (if recorded then Dynamic else Static);
    recorded;
    traversed;
    children }

let rec fold_nodes f acc node =
  let acc = f acc node in
  Array.fold_left
    (fun acc -> function
      | D_skip | D_generic -> acc
      | D_inline n | D_test_inline n -> fold_nodes f acc n)
    acc node.children

let static_test_count node =
  fold_nodes (fun acc n -> if n.test_bt = Static then acc + 1 else acc) 0 node

let dynamic_test_count node =
  fold_nodes (fun acc n -> if n.test_bt = Dynamic then acc + 1 else acc) 0 node

let resolved_dispatch_count node = fold_nodes (fun acc _ -> acc + 2) 0 node

let pp_bt ppf = function
  | Static -> Format.pp_print_string ppf "S"
  | Dynamic -> Format.pp_print_string ppf "D"

let rec pp ppf node =
  Format.fprintf ppf "@[<v 2>%s test:%a%s%s"
    node.shape.Sclass.klass.Ickpt_runtime.Model.kname pp_bt node.test_bt
    (if node.recorded then " record" else "")
    (if node.traversed then "" else " (subtree eliminated)");
  Array.iteri
    (fun i d ->
      match d with
      | D_skip -> ()
      | D_inline n -> Format.fprintf ppf "@,%d: %a" i pp n
      | D_test_inline n -> Format.fprintf ppf "@,%d?: %a" i pp n
      | D_generic -> Format.fprintf ppf "@,%d: <generic fallback>" i)
    node.children;
  Format.fprintf ppf "@]"

type action = Reduced | Selected | Unrolled | Resolved | Fallback | Residual

let pp_action ppf a =
  Format.pp_print_string ppf
    (match a with
    | Reduced -> "S:reduced"
    | Selected -> "S:branch-selected"
    | Unrolled -> "S:unrolled"
    | Resolved -> "S:inlined"
    | Fallback -> "D:generic-fallback"
    | Residual -> "D:residual")

(* Binding-time classification of an expression for a method body whose
   receiver (v0) has the given shape. This mirrors the partial evaluator's
   abstract values, reduced to the two-level view; loop variables (any
   bound variable other than v0) are treated as static, matching the PE's
   unrolling of statically-bounded loops. *)
type aval = V_static | V_dynamic | V_obj of Sclass.shape option * bool
(* V_obj (shape, definitely_present): None = unknown shape *)

let rec eval_bt shape (e : Cklang.expr) : aval =
  let open Cklang in
  match e with
  | Const _ -> V_static
  | Var 0 -> V_obj (Some shape, true)
  | Var _ -> V_static (* loop counters and let-bound ints *)
  | Kid_of e' | N_ints e' | N_children e' -> (
      match eval_bt shape e' with
      | V_obj (Some _, _) -> V_static
      | _ -> V_dynamic)
  | Modified e' -> (
      match eval_bt shape e' with
      | V_obj (Some s, _) when s.Sclass.status = Sclass.Clean -> V_static
      | _ -> V_dynamic)
  | Id_of _ | Int_field _ -> V_dynamic
  | Child (o, i) -> (
      match (eval_bt shape o, i) with
      | V_obj (Some s, _), Const j
        when j >= 0 && j < Array.length s.Sclass.children -> (
          match s.Sclass.children.(j) with
          | Sclass.Null_child -> V_static (* statically null *)
          | Sclass.Exact c -> V_obj (Some c, true)
          | Sclass.Nullable c -> V_obj (Some c, false)
          | Sclass.Unknown -> V_obj (None, false)
          | Sclass.Clean_opaque -> V_obj (None, false))
      | _ -> V_obj (None, false))
  | Is_null e' -> (
      match eval_bt shape e' with
      | V_obj (_, true) -> V_static
      | V_static -> V_static (* null child: statically known *)
      | _ -> V_dynamic)
  | Not e' -> eval_bt shape e'
  | Cond (c, a, b) -> (
      match (eval_bt shape c, eval_bt shape a, eval_bt shape b) with
      | V_static, V_static, V_static -> V_static
      | _ -> V_dynamic)

let classify shape (s : Cklang.stmt) : action =
  let open Cklang in
  match s with
  | Write _ | Reset_modified _ | Call_generic _ -> Residual
  | If (c, _, _) -> (
      match eval_bt shape c with
      | V_static ->
          (* Which way does a static test go? The only static tests in the
             generic method are Modified on clean receivers (false) and
             null tests; either way a branch is chosen — when the chosen
             branch is empty the whole statement reduces. *)
          if c = Modified (Var 0) && shape.Sclass.status = Sclass.Clean then
            Reduced
          else Selected
      | _ -> Residual)
  | For (_, lo, hi, _) -> (
      match (eval_bt shape lo, eval_bt shape hi) with
      | V_static, V_static -> Unrolled
      | _ -> Residual)
  | Let (_, _, _) -> Residual
  | Invoke_virtual (_, e) | Call (_, e) -> (
      match eval_bt shape e with
      | V_obj (Some s, true) ->
          if Sclass.all_clean s then Reduced else Resolved
      | V_obj (_, _) -> Fallback
      | V_static -> Reduced (* call on statically-null child *)
      | V_dynamic -> Fallback)

let annotate_method ?(program = Generic_method.program) shape meth =
  List.map (fun s -> (s, classify shape s)) (Cklang.method_body program meth)

let pp_two_level ppf anns =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s, a) ->
      Format.fprintf ppf "[%-19s] %a@,"
        (Format.asprintf "%a" pp_action a)
        Cklang.pp_stmt s)
    anns;
  Format.fprintf ppf "@]"
