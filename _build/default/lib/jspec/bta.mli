(** Offline binding-time analysis of the generic checkpoint method with
    respect to a specialization class — the Tempo-style front half of the
    pipeline. Where {!Pe} produces residual code, this module produces the
    {e decisions}: which [modified] tests are static, which dispatches
    resolve, which subtrees disappear. {!Pe}'s output is property-tested
    against these decisions. *)

type bt = Static | Dynamic

type node = {
  shape : Sclass.shape;
  test_bt : bt;
      (** binding time of this object's [if (modified)] test: [Static] when
          the object is declared [Clean] (test eliminated), [Dynamic]
          otherwise *)
  recorded : bool;  (** does residual code contain recording for this node *)
  traversed : bool;
      (** does any residual code remain for the subtree rooted here *)
  children : decision array;
}

and decision =
  | D_skip  (** statically null child, or entirely clean subtree *)
  | D_inline of node  (** present child, traversal inlined *)
  | D_test_inline of node  (** nullable child: residual null test + inline *)
  | D_generic  (** unknown child: residual generic fallback *)

val analyze : Sclass.shape -> node

val static_test_count : node -> int
(** Number of [modified] tests eliminated across the tree. *)

val dynamic_test_count : node -> int

val resolved_dispatch_count : node -> int
(** Virtual [record]/[fold] pairs resolved to inline code (2 per inlined
    node). *)

val pp : Format.formatter -> node -> unit
(** Two-level rendering: the shape tree annotated with S/D marks. *)

(** {1 Two-level view of the generic method}

    Classic offline BTA output: each statement of a generic method body,
    annotated with what the specializer will do to it for a receiver of a
    given shape. This is the Tempo-style artifact a user inspects to
    understand {e why} the residual code looks the way it does. *)

type action =
  | Reduced  (** disappears: static test is false / receiver clean *)
  | Selected  (** static conditional: one branch chosen at spec time *)
  | Unrolled  (** loop with static bounds: expanded *)
  | Resolved  (** virtual call on statically-known receiver: inlined *)
  | Fallback  (** call residualized to the generic algorithm *)
  | Residual  (** remains (possibly with reduced sub-parts) *)

val pp_action : Format.formatter -> action -> unit

val annotate_method :
  ?program:Cklang.program -> Sclass.shape -> Cklang.meth ->
  (Cklang.stmt * action) list
(** Annotate the top-level statements of [meth]'s body for a receiver of
    the given shape. (Non-recursive: child shapes get their own calls.) *)

val pp_two_level :
  Format.formatter -> (Cklang.stmt * action) list -> unit
