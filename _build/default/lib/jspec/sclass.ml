open Ickpt_runtime

type status = Clean | Tracked

type shape = { klass : Model.klass; status : status; children : child array }

and child =
  | Null_child
  | Exact of shape
  | Nullable of shape
  | Unknown
  | Clean_opaque

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let rec validate s =
  let expected = s.klass.Model.n_children in
  if Array.length s.children <> expected then
    ill_formed "shape for %s: %d child declarations, class has %d slots"
      s.klass.Model.kname (Array.length s.children) expected;
  Array.iter
    (function
      | Null_child | Unknown | Clean_opaque -> ()
      | Exact c | Nullable c -> validate c)
    s.children

let shape ?(status = Tracked) klass children =
  let s = { klass; status; children } in
  validate s;
  s

let leaf ?status klass =
  shape ?status klass (Array.make klass.Model.n_children Null_child)

let chain ?(status_at = fun _ -> Tracked) klass ~next_slot ~len =
  if len < 1 then invalid_arg "Sclass.chain: len must be >= 1";
  if next_slot < 0 || next_slot >= klass.Model.n_children then
    invalid_arg "Sclass.chain: next_slot out of range";
  let rec build i =
    let children = Array.make klass.Model.n_children Null_child in
    if i < len - 1 then children.(next_slot) <- Exact (build (i + 1));
    shape ~status:(status_at i) klass children
  in
  build 0

let rec all_clean s =
  s.status = Clean
  && Array.for_all
       (function
         | Null_child | Clean_opaque -> true
         | Exact c | Nullable c -> all_clean c
         | Unknown -> false)
       s.children

let rec node_count s =
  1
  + Array.fold_left
      (fun acc -> function
        | Null_child | Unknown | Clean_opaque -> acc
        | Exact c | Nullable c -> acc + node_count c)
      0 s.children

let rec tracked_count s =
  (if s.status = Tracked then 1 else 0)
  + Array.fold_left
      (fun acc -> function
        | Null_child | Unknown | Clean_opaque -> acc
        | Exact c | Nullable c -> acc + tracked_count c)
      0 s.children

let pp_status ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Tracked -> Format.pp_print_string ppf "tracked"

let rec pp ppf s =
  Format.fprintf ppf "@[<v 2>%s[%a]" s.klass.Model.kname pp_status s.status;
  Array.iteri
    (fun i c ->
      match c with
      | Null_child -> ()
      | Exact c -> Format.fprintf ppf "@,%d: %a" i pp c
      | Nullable c -> Format.fprintf ppf "@,%d?: %a" i pp c
      | Unknown -> Format.fprintf ppf "@,%d: ?" i
      | Clean_opaque -> Format.fprintf ppf "@,%d: ~clean" i)
    s.children;
  Format.fprintf ppf "@]"
