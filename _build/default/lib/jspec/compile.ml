open Ickpt_runtime
open Ickpt_stream
open Cklang

exception Shape_violation of string

let violation fmt = Format.kasprintf (fun s -> raise (Shape_violation s)) fmt

(* A frame holds the variable slots of one activation. Object and int
   variables live in separate arrays; the language is consistently typed,
   so a slot is only ever used at one type. Frames are recycled through a
   LIFO pool (activations strictly nest), the moral equivalent of a call
   stack — no per-invocation allocation on the steady state. *)
type frame = {
  objs : Model.obj option array;
  ints : int array;
  mutable d : Out_stream.t;
}

let null_violation e =
  violation
    "null object where the specialization class declared one present (%a)"
    pp_expr e

let get_obj e f v =
  match f.objs.(v) with Some o -> o | None -> null_violation e

(* Compilation fuses the hot access shapes the partial evaluator emits —
   [Var v] and [Child (Var v, Const i)] receivers — into single closures;
   anything else falls back to the general compositional scheme. *)
let rec c_int (e : expr) : frame -> int =
  match e with
  | Const n -> fun _ -> n
  | Var v -> fun f -> f.ints.(v)
  | Int_field (Var v, Const i) -> fun f -> (get_obj e f v).Model.ints.(i)
  | Int_field (o, i) ->
      let co = c_obj_present o and ci = c_int i in
      fun f -> (co f).Model.ints.((ci f))
  | Id_of (Var v) -> fun f -> (get_obj e f v).Model.info.Model.id
  | Id_of (Child (Var v, Const i)) ->
      fun f ->
        (match (get_obj e f v).Model.children.(i) with
        | Some c -> c.Model.info.Model.id
        | None -> null_violation e)
  | Id_of o ->
      let co = c_obj_present o in
      fun f -> (co f).Model.info.Model.id
  | Kid_of o ->
      let co = c_obj_present o in
      fun f -> (co f).Model.klass.Model.kid
  | Modified (Var v) ->
      fun f -> if (get_obj e f v).Model.info.Model.modified then 1 else 0
  | Modified o ->
      let co = c_obj_present o in
      fun f -> if (co f).Model.info.Model.modified then 1 else 0
  | Is_null (Child (Var v, Const i)) ->
      fun f ->
        (match (get_obj e f v).Model.children.(i) with
        | None -> 1
        | Some _ -> 0)
  | Is_null o ->
      let co = c_obj o in
      fun f -> ( match co f with None -> 1 | Some _ -> 0)
  | Not e ->
      let ce = c_int e in
      fun f -> if ce f = 0 then 1 else 0
  | N_ints o ->
      let co = c_obj_present o in
      fun f -> (co f).Model.klass.Model.n_ints
  | N_children o ->
      let co = c_obj_present o in
      fun f -> (co f).Model.klass.Model.n_children
  | Cond (Is_null (Child (Var v, Const i)), Const a, Id_of (Child (Var v', Const i')))
    when v = v' && i = i' ->
      (* The generic record's child-id expression: children[i] == null ?
         -1 : children[i].id — one load instead of three closures. *)
      fun f ->
        (match (get_obj e f v).Model.children.(i) with
        | None -> a
        | Some c -> c.Model.info.Model.id)
  | Cond (c, a, b) ->
      let cc = c_int c and ca = c_int a and cb = c_int b in
      fun f -> if cc f <> 0 then ca f else cb f
  | Child _ -> violation "integer expression expected: %a" pp_expr e

and c_obj (e : expr) : frame -> Model.obj option =
  match e with
  | Var v -> fun f -> f.objs.(v)
  | Child (Var v, Const i) -> fun f -> (get_obj e f v).Model.children.(i)
  | Child (o, i) ->
      let co = c_obj_present o and ci = c_int i in
      fun f -> (co f).Model.children.((ci f))
  | Const _ | Int_field _ | Id_of _ | Kid_of _ | Modified _ | Is_null _
  | Not _ | N_ints _ | N_children _ | Cond _ ->
      violation "object expression expected: %a" pp_expr e

and c_obj_present (e : expr) : frame -> Model.obj =
  match e with
  | Var v -> fun f -> get_obj e f v
  | _ ->
      let co = c_obj e in
      fun f -> ( match co f with Some o -> o | None -> null_violation e)

let seq (fs : (frame -> unit) list) : frame -> unit =
  match fs with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f1; f2 ] ->
      fun fr ->
        f1 fr;
        f2 fr
  | [ f1; f2; f3 ] ->
      fun fr ->
        f1 fr;
        f2 fr;
        f3 fr
  | fs ->
      let fs = Array.of_list fs in
      fun fr ->
        for i = 0 to Array.length fs - 1 do
          fs.(i) fr
        done

(* [invoke] handles virtual/static method calls in generic code; residual
   code never contains them (the PE removed or resolved them). *)
let rec c_stmts ~invoke stmts = seq (List.map (c_stmt ~invoke) stmts)

and c_stmt ~invoke = function
  | Write (Const n) -> fun f -> Out_stream.write_int f.d n
  | Write e ->
      let ce = c_int e in
      fun f -> Out_stream.write_int f.d (ce f)
  | Reset_modified (Var v) ->
      fun f ->
        (get_obj (Var v) f v).Model.info.Model.modified <- false
  | Reset_modified e ->
      let co = c_obj_present e in
      fun f -> (co f).Model.info.Model.modified <- false
  | If (Modified (Var v), t, []) ->
      (* The residual test the specializer leaves on Tracked nodes. *)
      let ct = c_stmts ~invoke t in
      fun f -> if (get_obj (Var v) f v).Model.info.Model.modified then ct f
  | If (c, t, e) ->
      let cc = c_int c
      and ct = c_stmts ~invoke t
      and ce = c_stmts ~invoke e in
      fun f -> if cc f <> 0 then ct f else ce f
  | Let (v, e, body) ->
      let ce = c_obj e and cbody = c_stmts ~invoke body in
      fun f ->
        f.objs.(v) <- ce f;
        cbody f
  | For (v, lo, hi, body) ->
      let clo = c_int lo and chi = c_int hi and cbody = c_stmts ~invoke body in
      fun f ->
        let hi = chi f in
        for i = clo f to hi - 1 do
          f.ints.(v) <- i;
          cbody f
        done
  | Invoke_virtual (m, e) | Call (m, e) ->
      let ce = c_obj e in
      fun f -> ( match ce f with None -> () | Some o -> invoke f.d o m)
  | Call_generic e ->
      let ce = c_obj e in
      fun f ->
        ( match ce f with
        | None -> ()
        | Some o -> Ickpt_core.Checkpointer.incremental f.d o)

let no_invoke _ _ _ =
  violation "method call reached compiled residual code"

(* Frame pool: activations nest LIFO, so a stack of free frames recycles
   allocations. The sink stream placeholder keeps the [d] field total. *)
let make_pool n =
  let placeholder = Out_stream.sink () in
  let pool = ref [] in
  let acquire d =
    match !pool with
    | f :: rest ->
        pool := rest;
        f.d <- d;
        f
    | [] -> { objs = Array.make n None; ints = Array.make n 0; d }
  in
  let release f =
    f.d <- placeholder;
    pool := f :: !pool
  in
  (acquire, release)

let residual ?on_entry (r : Pe.result) =
  let compiled = c_stmts ~invoke:no_invoke r.Pe.body in
  let n = max 1 (max r.Pe.n_vars (Cklang.max_var r.Pe.body + 1)) in
  let acquire, release = make_pool n in
  let run d root =
    let f = acquire d in
    f.objs.(0) <- Some root;
    (match compiled f with
    | () -> release f
    | exception e ->
        release f;
        raise e)
  in
  match on_entry with
  | None -> run
  | Some hook ->
      fun d root ->
        hook ();
        run d root

let program ?on_dispatch (p : Cklang.program) =
  let n =
    1 + List.fold_left max 0 (List.map max_var [ p.checkpoint; p.record; p.fold ])
  in
  let acquire, release = make_pool n in
  (* Dispatch table: class id x method -> compiled body, resolved through
     array indexing — the vtable access compiled C would perform. All
     classes share the generic bodies, but the lookup still happens on
     every call; that is the indirection specialization removes. *)
  let table : (frame -> unit) option array ref = ref (Array.make 64 None) in
  let hook = match on_dispatch with None -> fun _ -> () | Some h -> h in
  let rec invoke d o m =
    hook o;
    let key =
      (o.Model.klass.Model.kid * 4)
      + (match m with M_checkpoint -> 0 | M_record -> 1 | M_fold -> 2)
    in
    if key >= Array.length !table then begin
      let bigger = Array.make (max (key + 1) (2 * Array.length !table)) None in
      Array.blit !table 0 bigger 0 (Array.length !table);
      table := bigger
    end;
    let compiled =
      match !table.(key) with
      | Some c -> c
      | None ->
          let c = c_stmts ~invoke (method_body p m) in
          !table.(key) <- Some c;
          c
    in
    let f = acquire d in
    f.objs.(0) <- Some o;
    match compiled f with
    | () -> release f
    | exception e ->
        release f;
        raise e
  in
  fun d root -> invoke d root M_checkpoint
