(** Compilation of {!Cklang} to OCaml closures — the analog of running
    Harissa-compiled C code in the paper: no interpretive overhead, direct
    field access, and (for residual code) no dispatch at all.

    Compilation is done once; the returned closure can be invoked on any
    number of objects. The closure allocates a small variable frame per
    invocation (residual code) or per method activation (generic code),
    mirroring JVM frames. Closures are reentrant but not thread-safe, like
    the rest of the library. *)

open Ickpt_runtime

exception Shape_violation of string
(** Raised when compiled specialized code dereferences a statically
    "present" child that is null at run time — i.e. the heap does not
    conform to the specialization class it was compiled from. (Use
    {!Guard} to diagnose such violations ahead of time.) *)

val residual :
  ?on_entry:(unit -> unit) ->
  Pe.result ->
  Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Compile specialized checkpoint code. [on_entry], when given, runs once
    per top-level invocation (backends use it for cost accounting). *)

val program :
  ?on_dispatch:(Model.obj -> unit) ->
  Cklang.program ->
  Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Compile the generic program; virtual invocations resolve through a
    per-class table at run time (the dispatch the paper's specialization
    eliminates). [on_dispatch] runs at every virtual call. *)
