lib/jspec/pe.ml: Array Cklang Format Generic_method Ickpt_runtime List Plan_opt Sclass
