lib/jspec/generic_method.mli: Cklang
