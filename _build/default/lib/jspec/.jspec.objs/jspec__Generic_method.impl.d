lib/jspec/generic_method.ml: Cklang
