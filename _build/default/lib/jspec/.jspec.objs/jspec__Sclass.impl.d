lib/jspec/sclass.ml: Array Format Ickpt_runtime Model
