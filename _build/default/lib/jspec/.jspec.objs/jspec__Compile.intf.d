lib/jspec/compile.mli: Cklang Ickpt_runtime Ickpt_stream Model Pe
