lib/jspec/plan_opt.mli: Cklang
