lib/jspec/bta.mli: Cklang Format Sclass
