lib/jspec/sclass.mli: Format Ickpt_runtime Model
