lib/jspec/compile.ml: Array Cklang Format Ickpt_core Ickpt_runtime Ickpt_stream List Model Out_stream Pe
