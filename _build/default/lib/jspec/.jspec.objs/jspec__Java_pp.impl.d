lib/jspec/java_pp.ml: Cklang Format List Pe String
