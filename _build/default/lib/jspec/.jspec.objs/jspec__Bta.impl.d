lib/jspec/bta.ml: Array Cklang Format Generic_method Ickpt_runtime List Sclass
