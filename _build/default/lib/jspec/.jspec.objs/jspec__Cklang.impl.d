lib/jspec/cklang.ml: Format List
