lib/jspec/pe.mli: Cklang Sclass
