lib/jspec/java_pp.mli: Format Pe
