lib/jspec/guard.mli: Format Ickpt_runtime Ickpt_stream Model Sclass
