lib/jspec/spec_cache.mli: Ickpt_runtime Ickpt_stream Model Pe Sclass
