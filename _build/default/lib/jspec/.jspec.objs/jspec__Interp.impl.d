lib/jspec/interp.ml: Array Cklang Format Hashtbl Ickpt_core Ickpt_runtime Ickpt_stream List Model Out_stream
