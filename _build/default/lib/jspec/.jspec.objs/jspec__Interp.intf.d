lib/jspec/interp.mli: Cklang Ickpt_runtime Ickpt_stream Model
