lib/jspec/cklang.mli: Format
