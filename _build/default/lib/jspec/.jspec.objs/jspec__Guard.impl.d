lib/jspec/guard.ml: Array Format Ickpt_runtime List Model Printf Sclass
