lib/jspec/plan_opt.ml: Cklang List
