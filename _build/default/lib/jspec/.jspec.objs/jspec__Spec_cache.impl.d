lib/jspec/spec_cache.ml: Array Buffer Compile Hashtbl Ickpt_runtime Ickpt_stream Model Pe Sclass
