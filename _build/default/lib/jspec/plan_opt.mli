(** Residual-code cleanup: the post-pass a partial evaluator runs on its
    output. Purely semantics-preserving — constant folding in expressions,
    and removal of statements that can have no effect (conditionals with
    two empty branches, bindings and loops with empty bodies). All
    expressions in the language are pure, so dropping an unused evaluation
    is always sound. *)

val simplify_expr : Cklang.expr -> Cklang.expr

val simplify : Cklang.stmt list -> Cklang.stmt list
