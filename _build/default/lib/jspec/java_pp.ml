open Cklang

let klass_of r v =
  match List.assoc_opt v r.Pe.var_klass with
  | Some name -> name
  | None -> "Object"

let rec pp_expr ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var v -> Format.fprintf ppf "v%d" v
  | Int_field (o, i) -> Format.fprintf ppf "%a.f%a" pp_expr o pp_expr i
  | Child (o, i) -> Format.fprintf ppf "%a.child%a" pp_expr o pp_expr i
  | Id_of o -> Format.fprintf ppf "%a.getCheckpointInfo().getId()" pp_expr o
  | Kid_of o -> Format.fprintf ppf "%a.getClassId()" pp_expr o
  | Modified o ->
      Format.fprintf ppf "%a.getCheckpointInfo().modified()" pp_expr o
  | Is_null o -> Format.fprintf ppf "%a == null" pp_expr o
  | Not e -> Format.fprintf ppf "!(%a)" pp_expr e
  | N_ints o -> Format.fprintf ppf "%a.nIntFields()" pp_expr o
  | N_children o -> Format.fprintf ppf "%a.nChildren()" pp_expr o
  | Cond (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt r ppf = function
  | Write e -> Format.fprintf ppf "d.writeInt(%a);" pp_expr e
  | Reset_modified e ->
      Format.fprintf ppf "%a.getCheckpointInfo().resetModified();" pp_expr e
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c (pp_stmts r) t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c (pp_stmts r) t (pp_stmts r) e
  | Let (v, e, body) ->
      Format.fprintf ppf "%s v%d = %a;@,%a" (klass_of r v) v pp_expr e
        (pp_stmts r) body
  | For (v, lo, hi, body) ->
      Format.fprintf ppf
        "@[<v 2>for (int v%d = %a; v%d < %a; v%d++) {@,%a@]@,}" v pp_expr lo v
        pp_expr hi v (pp_stmts r) body
  | Invoke_virtual (m, e) | Call (m, e) ->
      Format.fprintf ppf "%a.%a(d); /* virtual */" pp_expr e Cklang.pp_meth m
  | Call_generic e -> Format.fprintf ppf "c.checkpoint(%a);" pp_expr e

and pp_stmts r ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_stmt r) ppf stmts

let pp ppf (r : Pe.result) =
  let root = klass_of r 0 in
  Format.fprintf ppf
    "@[<v 2>public void checkpoint_%s(Checkpointable o) {@,%s v0 = (%s)o;@,%a@]@,}"
    (String.lowercase_ascii root) root root (pp_stmts r) r.Pe.body

let to_string r = Format.asprintf "%a" pp r
