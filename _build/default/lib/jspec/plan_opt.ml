open Cklang

let rec simplify_expr e =
  match e with
  | Const _ | Var _ -> e
  | Int_field (a, b) -> Int_field (simplify_expr a, simplify_expr b)
  | Child (a, b) -> Child (simplify_expr a, simplify_expr b)
  | Id_of a -> Id_of (simplify_expr a)
  | Kid_of a -> Kid_of (simplify_expr a)
  | Modified a -> Modified (simplify_expr a)
  | Is_null a -> Is_null (simplify_expr a)
  | N_ints a -> N_ints (simplify_expr a)
  | N_children a -> N_children (simplify_expr a)
  | Not a -> (
      match simplify_expr a with
      | Const n -> Const (if n = 0 then 1 else 0)
      | Not b -> b
      | a' -> Not a')
  | Cond (c, a, b) -> (
      match simplify_expr c with
      | Const 0 -> simplify_expr b
      | Const _ -> simplify_expr a
      | c' -> Cond (c', simplify_expr a, simplify_expr b))

let rec simplify stmts = List.concat_map simplify_stmt stmts

and simplify_stmt = function
  | Write e -> [ Write (simplify_expr e) ]
  | Reset_modified e -> [ Reset_modified (simplify_expr e) ]
  | If (c, t, f) -> (
      let t = simplify t and f = simplify f in
      match (simplify_expr c, t, f) with
      | _, [], [] -> []
      | Const 0, _, _ -> f
      | Const _, _, _ -> t
      | Not c', t, f when f <> [] -> [ If (c', f, t) ]
      | c', t, f -> [ If (c', t, f) ])
  | Let (v, e, body) -> (
      match simplify body with
      | [] -> []
      | body -> [ Let (v, simplify_expr e, body) ])
  | For (v, lo, hi, body) -> (
      match simplify body with
      | [] -> []
      | body -> [ For (v, simplify_expr lo, simplify_expr hi, body) ])
  | Invoke_virtual (m, e) -> [ Invoke_virtual (m, simplify_expr e) ]
  | Call (m, e) -> [ Call (m, simplify_expr e) ]
  | Call_generic e -> [ Call_generic (simplify_expr e) ]
