(** AST interpretation of {!Cklang} programs.

    This is both the reference semantics (the differential-testing oracle
    for {!Compile}) and the execution model of the slowest evaluation
    environment in the paper's comparison (the JDK 1.2 JIT running generic
    code): every operation pays interpretive overhead, and every virtual
    invocation pays a method-table lookup keyed by the receiver's class. *)

open Ickpt_runtime

exception Runtime_error of string
(** Type confusion or null dereference during interpretation — impossible
    for programs produced by {!Generic_method} and {!Pe} on conforming
    heaps, but reachable if a declared shape is violated. *)

val run_program :
  Cklang.program -> Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Execute the [checkpoint] method on the object. *)

val run_residual :
  Cklang.stmt list -> n_vars:int -> Ickpt_stream.Out_stream.t -> Model.obj ->
  unit
(** Execute a residual (specialized) body with variable 0 bound to the
    object. *)

val dispatch_count : unit -> int
(** Virtual dispatches performed since start (for tests and backend
    instrumentation). *)
