open Cklang

let checkpoint_param = 0

(* Variable conventions inside each method body:
   v0 = the receiver, v1 = loop index, v2 = let-bound child. *)
let o = Var 0
let i = Var 1

let program =
  { checkpoint =
      [ If
          ( Modified o,
            [ Write (Id_of o);
              Write (Kid_of o);
              Invoke_virtual (M_record, o);
              Reset_modified o ],
            [] );
        Invoke_virtual (M_fold, o) ];
    record =
      [ For (1, Const 0, N_ints o, [ Write (Int_field (o, i)) ]);
        For
          ( 1,
            Const 0,
            N_children o,
            [ Write
                (Cond (Is_null (Child (o, i)), Const (-1), Id_of (Child (o, i))))
            ] ) ];
    fold =
      [ For
          ( 1,
            Const 0,
            N_children o,
            [ If
                ( Not (Is_null (Child (o, i))),
                  [ Let (2, Child (o, i), [ Call (M_checkpoint, Var 2) ]) ],
                  [] ) ] ) ] }
