(** Specialization classes: the programmer-supplied declarations that drive
    specialization (paper Section 3, [specclass ... specializes Checkpoint]).

    A {!shape} describes one recurring compound structure:
    - the runtime class of each node (making virtual dispatch resolvable);
    - its {!status} in the current program phase: [Tracked] nodes may be
      modified between checkpoints (the residual code keeps the flag test),
      [Clean] nodes are declared unmodified (test and recording eliminated);
    - the static knowledge about each child slot: statically null, present
      with a known shape, nullable with a known shape, or unknown (the
      residual code falls back to the generic checkpointer there).

    Shapes are finite trees: a shape of a linked list of known length is its
    unrolling ({!chain}), which is what lets specialization eliminate
    per-element tests (paper Section 5). *)

open Ickpt_runtime

type status =
  | Clean  (** declared unmodified in this phase: [modified] is false *)
  | Tracked  (** may be modified: residual code tests the flag *)

type shape = {
  klass : Model.klass;
  status : status;
  children : child array;  (** one per child slot of [klass] *)
}

and child =
  | Null_child  (** statically null *)
  | Exact of shape  (** statically present *)
  | Nullable of shape  (** may be null, known shape when present *)
  | Unknown  (** no static knowledge: generic fallback *)
  | Clean_opaque
      (** statically unknown shape, but the {e entire} subtree is declared
          unmodified in this phase: the child's id is still recorded by its
          parent, but the traversal is eliminated. This is how phase
          knowledge covers variable-sized substructures (e.g. the
          side-effect lists of the program analysis engine during the
          binding-time analysis phase, paper Section 4.2). *)

exception Ill_formed of string

val shape : ?status:status -> Model.klass -> child array -> shape
(** [shape k children] builds and {!validate}s a node. [status] defaults to
    [Tracked] (the safe assumption). *)

val leaf : ?status:status -> Model.klass -> shape
(** A node all of whose child slots are statically null. *)

val chain :
  ?status_at:(int -> status) -> Model.klass -> next_slot:int -> len:int ->
  shape
(** [chain k ~next_slot ~len] unrolls a linked list of exactly [len]
    elements of class [k], linked through child slot [next_slot] (other
    child slots statically null). [status_at i] gives element [i]'s status
    (head is 0); default all [Tracked].
    @raise Invalid_argument when [len < 1]. *)

val validate : shape -> unit
(** @raise Ill_formed when a node's [children] array length differs from
    its class's child-slot count. *)

val all_clean : shape -> bool
(** True when the node and every statically reachable descendant is
    [Clean] — the whole-subtree case whose traversal specialization
    removes entirely. *)

val node_count : shape -> int
(** Number of nodes in the shape tree (unknown children count 0). *)

val tracked_count : shape -> int

val pp : Format.formatter -> shape -> unit
