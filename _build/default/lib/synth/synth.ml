open Ickpt_runtime

type config = {
  n_structures : int;
  n_lists : int;
  list_len : int;
  n_int_fields : int;
  pct_modified : int;
  modified_lists : int;
  last_only : bool;
  seed : int;
}

let default_config =
  { n_structures = 20_000;
    n_lists = 5;
    list_len = 5;
    n_int_fields = 10;
    pct_modified = 100;
    modified_lists = 5;
    last_only = false;
    seed = 0xC0FFEE }

let paper_total_objects c =
  c.n_structures * (1 + (c.n_lists * c.list_len))

type t = {
  config : config;
  schema : Schema.t;
  heap : Heap.t;
  compound : Model.klass;
  element : Model.klass;
  roots : Model.obj array;
  rng : Random.State.t;
}

let validate c =
  if c.n_structures < 1 then invalid_arg "Synth: n_structures < 1";
  if c.n_lists < 1 then invalid_arg "Synth: n_lists < 1";
  if c.list_len < 1 then invalid_arg "Synth: list_len < 1";
  if c.n_int_fields < 0 then invalid_arg "Synth: n_int_fields < 0";
  if c.pct_modified < 0 || c.pct_modified > 100 then
    invalid_arg "Synth: pct_modified out of range";
  if c.modified_lists < 0 || c.modified_lists > c.n_lists then
    invalid_arg "Synth: modified_lists out of range"

let build config =
  validate config;
  let schema = Schema.create () in
  let element =
    Schema.declare schema ~name:"Element" ~ints:config.n_int_fields
      ~children:1 ()
  in
  let compound =
    Schema.declare schema ~name:"Compound" ~ints:0 ~children:config.n_lists ()
  in
  let heap = Heap.create schema in
  let build_list s l =
    (* Build back-to-front so next pointers are available. *)
    let rec go tail k =
      if k < 0 then tail
      else begin
        let e = Heap.alloc heap element in
        for f = 0 to config.n_int_fields - 1 do
          e.Model.ints.(f) <- (s * 31) + (l * 7) + (k * 3) + f
        done;
        e.Model.children.(0) <- tail;
        go (Some e) (k - 1)
      end
    in
    go None (config.list_len - 1)
  in
  let roots =
    Array.init config.n_structures (fun s ->
        let o = Heap.alloc heap compound in
        for l = 0 to config.n_lists - 1 do
          o.Model.children.(l) <- build_list s l
        done;
        o)
  in
  { config;
    schema;
    heap;
    compound;
    element;
    roots;
    rng = Random.State.make [| config.seed |] }

let base_checkpoint t = Heap.clear_all_modified t.heap

let roots t = Array.to_list t.roots

let element_count t =
  t.config.n_structures * t.config.n_lists * t.config.list_len

(* Walk list [l] of structure [root], dirtying the candidate positions with
   probability pct/100. Candidates are all elements, or only the last when
   [last_only]. *)
let mutate_list t root l =
  let c = t.config in
  let dirtied = ref 0 in
  let modify e =
    if Random.State.int t.rng 100 < c.pct_modified then begin
      (if c.n_int_fields > 0 then
         Barrier.set_int e 0 (e.Model.ints.(0) + 1)
       else Barrier.touch e);
      incr dirtied
    end
  in
  let rec walk pos = function
    | None -> ()
    | Some e ->
        if (not c.last_only) || pos = c.list_len - 1 then modify e;
        walk (pos + 1) e.Model.children.(0)
  in
  walk 0 root.Model.children.(l);
  !dirtied

let mutate_round t =
  let c = t.config in
  let dirtied = ref 0 in
  Array.iter
    (fun root ->
      for l = 0 to c.modified_lists - 1 do
        dirtied := !dirtied + mutate_list t root l
      done)
    t.roots;
  !dirtied

(* Shapes. The element chain is unrolled to the exact list length; the
   compound's child slots carry one chain each. *)
let compound_shape t ~compound_status ~list_status =
  let c = t.config in
  Jspec.Sclass.shape ~status:compound_status t.compound
    (Array.init c.n_lists (fun l ->
         Jspec.Sclass.Exact
           (Jspec.Sclass.chain ~status_at:(list_status l) t.element ~next_slot:0
              ~len:c.list_len)))

let shape_structure t =
  compound_shape t ~compound_status:Jspec.Sclass.Tracked
    ~list_status:(fun _ _ -> Jspec.Sclass.Tracked)

let shape_modified_lists t =
  let c = t.config in
  compound_shape t ~compound_status:Jspec.Sclass.Clean ~list_status:(fun l _ ->
      if l < c.modified_lists then Jspec.Sclass.Tracked else Jspec.Sclass.Clean)

let shape_last_only t =
  let c = t.config in
  compound_shape t ~compound_status:Jspec.Sclass.Clean ~list_status:(fun l pos ->
      if l < c.modified_lists && pos = c.list_len - 1 then Jspec.Sclass.Tracked
      else Jspec.Sclass.Clean)

let pp_config ppf c =
  Format.fprintf ppf
    "%d structures x %d lists x len %d, %d int fields, %d%% modified, %d \
     modifiable lists%s, seed %#x"
    c.n_structures c.n_lists c.list_len c.n_int_fields c.pct_modified
    c.modified_lists
    (if c.last_only then ", last element only" else "")
    c.seed
