(** The paper's synthetic application (Section 5): a set of compound
    structures, each holding [n_lists] linked lists of [list_len] elements,
    each element carrying [n_int_fields] integer fields. Between
    checkpoints, a driver randomly modifies elements subject to the
    experiment's constraints:

    - [pct_modified] — the percentage of {e possibly modified} elements
      actually modified in a round (the figures' 100% / 50% / 25% series);
    - [modified_lists] — how many of the lists may contain modified
      elements at all (Fig. 9's 1 / 3 / 5 series);
    - [last_only] — whether a modified element may only be the last of its
      list (Fig. 10's configuration).

    The three [shape_*] functions build the specialization classes for the
    three levels of static knowledge the paper evaluates. *)

open Ickpt_runtime

type config = {
  n_structures : int;  (** paper: 20,000 *)
  n_lists : int;  (** paper: 5 *)
  list_len : int;  (** paper: 1 or 5 *)
  n_int_fields : int;  (** paper: 1 or 10 *)
  pct_modified : int;  (** 100, 50 or 25 *)
  modified_lists : int;  (** 1..n_lists *)
  last_only : bool;
  seed : int;
}

val default_config : config
(** Paper-scale defaults: 20,000 structures, 5 lists of length 5, 10 int
    fields, 100% modified, all lists modifiable, any position. *)

val paper_total_objects : config -> int
(** Objects the configuration allocates (structures + elements). *)

type t = {
  config : config;
  schema : Schema.t;
  heap : Heap.t;
  compound : Model.klass;
  element : Model.klass;
  roots : Model.obj array;
  rng : Random.State.t;
}

val build : config -> t
(** Allocate the whole population. Elements start with deterministic field
    values; all objects start modified (they are fresh). *)

val base_checkpoint : t -> unit
(** Clear every [modified] flag: the state right after a checkpoint. *)

val mutate_round : t -> int
(** One inter-checkpoint mutation round honouring the configuration's
    constraints; returns the number of elements dirtied. Deterministic in
    the configuration seed. *)

val roots : t -> Model.obj list

(** {1 Specialization classes} (paper Figs. 8, 9, 10)} *)

val shape_structure : t -> Jspec.Sclass.shape
(** Structure only: every node [Tracked] — removes dispatch and inlines the
    traversal, keeps every test (Fig. 8). *)

val shape_modified_lists : t -> Jspec.Sclass.shape
(** Structure + the set of lists that may contain modified elements: lists
    beyond [modified_lists] and the compound root are [Clean] (Fig. 9). *)

val shape_last_only : t -> Jspec.Sclass.shape
(** Structure + positions: within the possibly-modified lists only the
    last element is [Tracked] (Fig. 10). Meaningful when
    [config.last_only]. *)

val element_count : t -> int

val pp_config : Format.formatter -> config -> unit
