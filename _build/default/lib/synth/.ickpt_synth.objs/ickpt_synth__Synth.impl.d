lib/synth/synth.ml: Array Barrier Format Heap Ickpt_runtime Jspec Model Random Schema
