lib/synth/synth.mli: Format Heap Ickpt_runtime Jspec Model Random Schema
