(* Figure 8: specialization w.r.t. the object structure, vs unspecialized
   incremental checkpointing in the same (compiled) environment. Paper
   shape: 1.5x to ~3.5x; the win comes from devirtualized, inlined
   traversal, so it is largest when traversal dominates (long lists, small
   payloads). *)

open Ickpt_harness
open Ickpt_backend

let name = "fig8"

let title = "Figure 8: specialization w.r.t. structure"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:[ "len"; "ints"; "%mod"; "generic"; "specialized"; "speedup" ]
  in
  let results = ref [] in
  List.iter
    (fun list_len ->
      List.iter
        (fun n_int_fields ->
          List.iter
            (fun pct ->
              let cfg =
                Workload.config ~scale ~list_len ~n_int_fields ~pct
                  ~modified_lists:5 ~last_only:false
              in
              let generic, spec, speedup =
                Workload.compare_runners cfg
                  ~baseline:(fun _ -> Backend.native.Backend.run_generic)
                  ~subject:(fun t ->
                    Workload.specialized Backend.native
                      (Ickpt_synth.Synth.shape_structure t))
              in
              results := ((list_len, n_int_fields, pct), speedup) :: !results;
              Table.add_row table
                [ string_of_int list_len;
                  string_of_int n_int_fields;
                  string_of_int pct;
                  Table.cell_seconds generic.Workload.seconds;
                  Table.cell_seconds spec.Workload.seconds;
                  Table.cell_speedup speedup ])
            [ 100; 50; 25 ])
        [ 1; 10 ])
    [ 1; 5 ];
  Format.fprintf ppf "%a@." Table.pp table;
  let sp key = List.assoc key !results in
  let all = List.map snd !results in
  let open Workload in
  [ check ~label:"fig8: specialization always wins"
      ~ok:(List.for_all (fun s -> s > 1.0) all)
      ~detail:
        (Printf.sprintf "min speedup %.2fx" (List.fold_left min infinity all));
    check ~label:"fig8: both list lengths land in the paper's band (1.5-3.5x)"
      ~ok:(sp (5, 1, 100) >= 1.5 && sp (1, 1, 100) >= 1.5)
      ~detail:
        (Printf.sprintf
           "len5 %.2fx vs len1 %.2fx (paper gives the edge to len5; our \
            compiled baseline's per-object costs make the two comparable — \
            see EXPERIMENTS.md)"
           (sp (5, 1, 100)) (sp (1, 1, 100)));
    check ~label:"fig8: >= 1.5x somewhere (paper: 1.5-3.5x)"
      ~ok:(List.exists (fun s -> s >= 1.5) all)
      ~detail:
        (Printf.sprintf "max speedup %.2fx" (List.fold_left max 0.0 all)) ]
