(* Extension (not in the paper): recovery-time ablation. The paper takes
   checkpoints but never measures coming back. This experiment measures
   recovery time as the incremental chain grows, and the effect of
   compaction — the operational trade-off behind the Full_every /
   Chain_bytes_limit policies. *)

open Ickpt_harness
open Ickpt_synth

let name = "recovery"

let title = "Ablation (extension): recovery time vs chain length"

let run ~scale ppf =
  let cfg =
    { Synth.default_config with
      Synth.n_structures = max 20 (Workload.structures scale / 10);
      list_len = 5;
      n_int_fields = 10;
      pct_modified = 25 }
  in
  let table =
    Table.create ~title
      ~columns:
        [ "chain length"; "chain bytes"; "recovery"; "after compaction" ]
  in
  let t = Synth.build cfg in
  let chain = Ickpt_core.Chain.create t.Synth.schema in
  ignore (Ickpt_core.Chain.take_full chain (Synth.roots t));
  let recover_time c =
    let (result : (_, _) result), s =
      Clock.best_of ~repeats:3 (fun () -> Ickpt_core.Chain.recover c)
    in
    (match result with Ok _ -> () | Error e -> failwith e);
    s
  in
  let points = [ 1; 4; 16; 64 ] in
  let rows = ref [] in
  let upto = ref 1 in
  List.iter
    (fun target ->
      while !upto < target do
        ignore (Synth.mutate_round t);
        ignore (Ickpt_core.Chain.take_incremental chain (Synth.roots t));
        incr upto
      done;
      let uncompacted = recover_time chain in
      (* Compaction on a copy: rebuild a compacted chain from the same
         segments and time its recovery. *)
      let copy = Ickpt_core.Chain.create t.Synth.schema in
      List.iter (Ickpt_core.Chain.append copy) (Ickpt_core.Chain.segments chain);
      Ickpt_core.Chain.compact copy;
      let compacted = recover_time copy in
      rows := (target, uncompacted, compacted) :: !rows;
      Table.add_row table
        [ string_of_int (Ickpt_core.Chain.length chain);
          Table.cell_bytes (Ickpt_core.Chain.total_bytes chain);
          Table.cell_seconds uncompacted;
          Table.cell_seconds compacted ])
    points;
  Format.fprintf ppf "%a@." Table.pp table;
  let assoc k = List.find (fun (t, _, _) -> t = k) !rows in
  let _, long_un, long_c = assoc 64 in
  let _, short_un, _ = assoc 1 in
  let open Workload in
  [ check ~label:"recovery: longer chains recover slower"
      ~ok:(long_un > short_un)
      ~detail:
        (Printf.sprintf "64 segments %s vs 1 segment %s"
           (Table.cell_seconds long_un) (Table.cell_seconds short_un));
    check ~label:"recovery: compaction caps recovery time"
      ~ok:(long_c < long_un)
      ~detail:
        (Printf.sprintf "compacted %s vs chain %s" (Table.cell_seconds long_c)
           (Table.cell_seconds long_un)) ]
