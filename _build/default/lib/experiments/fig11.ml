(* Figure 11: the Figure-10 experiment on the dynamic-compilation
   environments — (a) the JDK 1.2 JIT analog (AST interpretation), (b) the
   HotSpot analog (compiled with inline caches). Paper shape: speedups up
   to ~12 on (a) and up to ~6 on (b); specialization and dynamic
   compilation are complementary. *)

open Ickpt_harness
open Ickpt_backend

let name = "fig11"

let title = "Figure 11: specialization on the Sun JVM analogs"

let run_backend ~scale ppf backend results =
  let table =
    Table.create
      ~title:(Printf.sprintf "%s — backend %s" title backend.Backend.name)
      ~columns:
        [ "ints"; "mod lists"; "%mod"; "generic"; "specialized"; "speedup" ]
  in
  List.iter
    (fun n_int_fields ->
      List.iter
        (fun modified_lists ->
          List.iter
            (fun pct ->
              let cfg =
                Workload.config ~scale ~list_len:5 ~n_int_fields ~pct
                  ~modified_lists ~last_only:true
              in
              let generic, spec, speedup =
                Workload.compare_runners cfg
                  ~baseline:(fun _ -> backend.Backend.run_generic)
                  ~subject:(fun t ->
                    Workload.specialized backend
                      (Ickpt_synth.Synth.shape_last_only t))
              in
              results :=
                ( (backend.Backend.name, n_int_fields, modified_lists, pct),
                  (generic.Workload.seconds, speedup) )
                :: !results;
              Table.add_row table
                [ string_of_int n_int_fields;
                  string_of_int modified_lists;
                  string_of_int pct;
                  Table.cell_seconds generic.Workload.seconds;
                  Table.cell_seconds spec.Workload.seconds;
                  Table.cell_speedup speedup ])
            [ 100; 50; 25 ])
        [ 1; 3; 5 ])
    [ 1; 10 ];
  Format.fprintf ppf "%a@." Table.pp table

let run ~scale ppf =
  let results = ref [] in
  run_backend ~scale ppf Backend.interp results;
  run_backend ~scale ppf Backend.inline_cache results;
  let speedups name =
    List.filter_map
      (fun ((b, _, _, _), (_, s)) -> if b = name then Some s else None)
      !results
  in
  let generic_time name =
    List.filter_map
      (fun ((b, _, _, _), (g, _)) -> if b = name then Some g else None)
      !results
    |> List.fold_left min infinity
  in
  let max_sp name = List.fold_left max 0.0 (speedups name) in
  let open Workload in
  [ check ~label:"fig11a: specialization helps under interpretation"
      ~ok:(List.for_all (fun s -> s > 1.0) (speedups "interp"))
      ~detail:(Printf.sprintf "max speedup %.2fx" (max_sp "interp"));
    check ~label:"fig11b: specialization still helps under dynamic compilation"
      ~ok:(List.for_all (fun s -> s > 1.0) (speedups "inline-cache"))
      ~detail:(Printf.sprintf "max speedup %.2fx" (max_sp "inline-cache"));
    check ~label:"fig11: the dynamic compiler narrows but does not close the gap"
      ~ok:(generic_time "inline-cache" < generic_time "interp")
      ~detail:
        (Printf.sprintf "generic: inline-cache %s vs interp %s"
           (Table.cell_seconds (generic_time "inline-cache"))
           (Table.cell_seconds (generic_time "interp"))) ]
