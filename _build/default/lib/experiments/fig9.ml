(* Figure 9: specialization w.r.t. structure plus the set of lists that may
   contain modified objects. Lists declared unmodifiable contribute no
   residual code at all, so the speedup grows as the number of modifiable
   lists shrinks. Paper shape: 2x to ~9x. *)

open Ickpt_harness
open Ickpt_backend

let name = "fig9"

let title = "Figure 9: specialization w.r.t. structure + modifiable lists"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:
        [ "len"; "ints"; "mod lists"; "%mod"; "generic"; "specialized";
          "speedup" ]
  in
  let results = ref [] in
  List.iter
    (fun list_len ->
      List.iter
        (fun n_int_fields ->
          List.iter
            (fun modified_lists ->
              List.iter
                (fun pct ->
                  let cfg =
                    Workload.config ~scale ~list_len ~n_int_fields ~pct
                      ~modified_lists ~last_only:false
                  in
                  let generic, spec, speedup =
                    Workload.compare_runners cfg
                      ~baseline:(fun _ -> Backend.native.Backend.run_generic)
                      ~subject:(fun t ->
                        Workload.specialized Backend.native
                          (Ickpt_synth.Synth.shape_modified_lists t))
                  in
                  results :=
                    ((list_len, n_int_fields, modified_lists, pct), speedup)
                    :: !results;
                  Table.add_row table
                    [ string_of_int list_len;
                      string_of_int n_int_fields;
                      string_of_int modified_lists;
                      string_of_int pct;
                      Table.cell_seconds generic.Workload.seconds;
                      Table.cell_seconds spec.Workload.seconds;
                      Table.cell_speedup speedup ])
                [ 100; 50; 25 ])
            [ 1; 3; 5 ])
        [ 1; 10 ])
    [ 1; 5 ];
  Format.fprintf ppf "%a@." Table.pp table;
  let sp key = List.assoc key !results in
  let open Workload in
  [ check ~label:"fig9: fewer modifiable lists => bigger speedup"
      ~ok:(sp (5, 1, 1, 100) > sp (5, 1, 5, 100))
      ~detail:
        (Printf.sprintf "1 list %.2fx vs 5 lists %.2fx" (sp (5, 1, 1, 100))
           (sp (5, 1, 5, 100)));
    check ~label:"fig9: reaches well beyond structure-only territory"
      ~ok:(sp (5, 1, 1, 100) >= 3.0)
      ~detail:(Printf.sprintf "best 1-list speedup %.2fx" (sp (5, 1, 1, 100)));
    check
      ~label:
        "fig9: endpoints ordered in the heavy-payload series (len 5, 10 ints)"
      ~ok:(sp (5, 10, 1, 100) >= sp (5, 10, 5, 100))
      ~detail:
        (Printf.sprintf
           "1:%.2fx 3:%.2fx 5:%.2fx (mid-point can wobble with timing noise)"
           (sp (5, 10, 1, 100)) (sp (5, 10, 3, 100)) (sp (5, 10, 5, 100))) ]
