lib/experiments/micro.mli: Bechamel Format
