lib/experiments/table1.mli: Format Workload
