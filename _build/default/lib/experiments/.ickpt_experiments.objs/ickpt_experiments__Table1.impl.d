lib/experiments/table1.ml: Attrs Clock Engine Format Hashtbl Ickpt_analysis Ickpt_core Ickpt_harness Ickpt_stream Jspec List Minic Printf Table Workload
