lib/experiments/ablation_recovery.mli: Format Workload
