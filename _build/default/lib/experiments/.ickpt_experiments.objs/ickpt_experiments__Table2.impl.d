lib/experiments/table2.ml: Backend Format Hashtbl Ickpt_backend Ickpt_harness Ickpt_synth List Printf Table Workload
