lib/experiments/fig7.ml: Format Ickpt_harness List Printf Table Workload
