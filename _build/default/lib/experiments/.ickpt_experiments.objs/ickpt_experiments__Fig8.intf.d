lib/experiments/fig8.mli: Format Workload
