lib/experiments/ablation_guard.ml: Backend Format Ickpt_backend Ickpt_harness Ickpt_synth Jspec List Printf Synth Table Workload
