lib/experiments/workload.ml: Clock Format Ickpt_backend Ickpt_core Ickpt_harness Ickpt_stream Ickpt_synth Jspec List Synth
