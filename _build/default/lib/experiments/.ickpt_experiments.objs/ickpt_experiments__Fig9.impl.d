lib/experiments/fig9.ml: Backend Format Ickpt_backend Ickpt_harness Ickpt_synth List Printf Table Workload
