lib/experiments/registry.mli: Format Workload
