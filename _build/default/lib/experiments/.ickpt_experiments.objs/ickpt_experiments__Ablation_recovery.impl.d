lib/experiments/ablation_recovery.ml: Clock Format Ickpt_core Ickpt_harness Ickpt_synth List Printf Synth Table Workload
