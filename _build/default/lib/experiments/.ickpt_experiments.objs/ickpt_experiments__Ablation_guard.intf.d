lib/experiments/ablation_guard.mli: Format Workload
