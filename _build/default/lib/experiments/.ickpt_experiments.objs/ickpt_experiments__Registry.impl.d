lib/experiments/registry.ml: Ablation_guard Ablation_recovery Fig10 Fig11 Fig7 Fig8 Fig9 Format List Table1 Table2 Workload
