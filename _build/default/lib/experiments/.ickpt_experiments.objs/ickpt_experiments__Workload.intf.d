lib/experiments/workload.mli: Format Ickpt_backend Ickpt_runtime Ickpt_stream Ickpt_synth Jspec Synth
