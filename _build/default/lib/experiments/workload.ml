open Ickpt_synth
open Ickpt_harness

type scale = float

let structures scale = max 50 (int_of_float (20_000.0 *. scale))

let config ~scale ~list_len ~n_int_fields ~pct ~modified_lists ~last_only =
  { Synth.default_config with
    Synth.n_structures = structures scale;
    list_len;
    n_int_fields;
    pct_modified = pct;
    modified_lists;
    last_only }

type measured = { bytes : int; seconds : float }

let measure ?(repeats = 3) t runner =
  let roots = Synth.roots t in
  Synth.base_checkpoint t;
  let bytes = ref 0 in
  let best = ref infinity in
  for rep = 1 to repeats do
    ignore (Synth.mutate_round t);
    let d =
      if rep = 1 then Ickpt_stream.Out_stream.create ()
      else Ickpt_stream.Out_stream.sink ()
    in
    let (), s =
      Clock.time (fun () -> List.iter (fun r -> runner d r) roots)
    in
    if rep = 1 then bytes := Ickpt_stream.Out_stream.size d;
    if s < !best then best := s
  done;
  { bytes = !bytes; seconds = !best }

let generic_core d o = Ickpt_core.Checkpointer.incremental d o

let full_core d o = Ickpt_core.Checkpointer.full_tree d o

let specialized backend shape =
  backend.Ickpt_backend.Backend.specialize (Jspec.Pe.specialize shape)

type check = { label : string; ok : bool; detail : string }

let check ~label ~ok ~detail = { label; ok; detail }

let pp_check ppf c =
  Format.fprintf ppf "[%s] %s — %s"
    (if c.ok then "PASS" else "FAIL")
    c.label c.detail

let pp_checks ppf checks =
  List.iter (fun c -> Format.fprintf ppf "%a@." pp_check c) checks

let all_ok = List.for_all (fun c -> c.ok)

let compare_runners ?repeats cfg ~baseline ~subject =
  let run mk =
    let t = Synth.build cfg in
    measure ?repeats t (mk t)
  in
  let b = run baseline in
  let s = run subject in
  (b, s, b.seconds /. s.seconds)
