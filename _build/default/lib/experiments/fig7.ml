(* Figure 7: incremental vs full checkpointing (compiled environment).
   Axes: list length {1,5} x ints/element {1,10} x %modified {100,50,25}.
   Paper shape: speedup grows as the fraction of modified objects falls and
   as the recording cost per object rises; >3x at 25% modified. *)

open Ickpt_harness

let name = "fig7"

let title = "Figure 7: incremental vs full checkpointing"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:
        [ "len"; "ints"; "%mod"; "full"; "incremental"; "incr bytes";
          "full bytes"; "speedup" ]
  in
  let results = ref [] in
  List.iter
    (fun list_len ->
      List.iter
        (fun n_int_fields ->
          List.iter
            (fun pct ->
              let cfg =
                Workload.config ~scale ~list_len ~n_int_fields ~pct
                  ~modified_lists:5 ~last_only:false
              in
              let full, incr, speedup =
                Workload.compare_runners cfg
                  ~baseline:(fun _ -> Workload.full_core)
                  ~subject:(fun _ -> Workload.generic_core)
              in
              results := ((list_len, n_int_fields, pct), speedup) :: !results;
              Table.add_row table
                [ string_of_int list_len;
                  string_of_int n_int_fields;
                  string_of_int pct;
                  Table.cell_seconds full.Workload.seconds;
                  Table.cell_seconds incr.Workload.seconds;
                  Table.cell_bytes incr.Workload.bytes;
                  Table.cell_bytes full.Workload.bytes;
                  Table.cell_speedup speedup ])
            [ 100; 50; 25 ])
        [ 1; 10 ])
    [ 1; 5 ];
  Format.fprintf ppf "%a@." Table.pp table;
  let sp key = List.assoc key !results in
  let open Workload in
  [ check ~label:"fig7: fewer modifications => bigger speedup (len 5, 10 ints)"
      ~ok:(sp (5, 10, 25) > sp (5, 10, 100))
      ~detail:
        (Printf.sprintf "25%%: %.2fx vs 100%%: %.2fx" (sp (5, 10, 25))
           (sp (5, 10, 100)));
    check ~label:"fig7: >2x when only 25% modified"
      ~ok:(sp (5, 10, 25) > 2.0 || sp (1, 10, 25) > 2.0)
      ~detail:
        (Printf.sprintf "len5: %.2fx, len1: %.2fx" (sp (5, 10, 25))
           (sp (1, 10, 25)));
    check ~label:"fig7: negligible overhead when all modified"
      ~ok:(sp (5, 10, 100) > 0.7)
      ~detail:(Printf.sprintf "100%% modified speedup %.2fx" (sp (5, 10, 100)))
  ]
