(* Table 2: checkpoint execution time, unspecialized vs specialized (10
   integers per element, lists of length 5), across the three execution
   environments, for 1 or 5 possibly-modified lists and 100/50/25% of those
   actually modified. Paper shape: every environment benefits from
   specialization; compiled Harissa code is fastest; and unspecialized code
   under the dynamic compiler can beat specialized code under the plain
   JIT — specialization and dynamic compilation are complementary. *)

open Ickpt_harness
open Ickpt_backend

let name = "table2"

let title = "Table 2: execution time across environments (len 5, 10 ints)"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:
        [ "backend"; "code"; "mod lists"; "100%"; "50%"; "25%" ]
  in
  let results = Hashtbl.create 64 in
  let cell backend ~spec ~modified_lists ~pct =
    let cfg =
      Workload.config ~scale ~list_len:5 ~n_int_fields:10 ~pct ~modified_lists
        ~last_only:false
    in
    let t = Ickpt_synth.Synth.build cfg in
    let runner =
      if spec then
        Workload.specialized backend (Ickpt_synth.Synth.shape_modified_lists t)
      else backend.Backend.run_generic
    in
    let m = Workload.measure t runner in
    Hashtbl.replace results (backend.Backend.name, spec, modified_lists, pct)
      m.Workload.seconds;
    m.Workload.seconds
  in
  List.iter
    (fun backend ->
      List.iter
        (fun spec ->
          List.iter
            (fun modified_lists ->
              let t100 = cell backend ~spec ~modified_lists ~pct:100 in
              let t50 = cell backend ~spec ~modified_lists ~pct:50 in
              let t25 = cell backend ~spec ~modified_lists ~pct:25 in
              Table.add_row table
                [ backend.Backend.name;
                  (if spec then "specialized" else "unspecialized");
                  string_of_int modified_lists;
                  Table.cell_seconds t100;
                  Table.cell_seconds t50;
                  Table.cell_seconds t25 ])
            [ 1; 5 ])
        [ false; true ])
    Backend.all;
  Format.fprintf ppf "%a@." Table.pp table;
  let time key = Hashtbl.find results key in
  let open Workload in
  let spec_beats_unspec =
    List.for_all
      (fun b ->
        List.for_all
          (fun m ->
            List.for_all
              (fun p ->
                time (b.Backend.name, true, m, p)
                <= time (b.Backend.name, false, m, p) *. 1.05)
              [ 100; 50; 25 ])
          [ 1; 5 ])
      Backend.all
  in
  [ check ~label:"table2: specialization never loses"
      ~ok:spec_beats_unspec ~detail:"specialized <= unspecialized in all cells";
    check ~label:"table2: compiled code beats interpretation (unspecialized)"
      ~ok:(time ("native", false, 5, 100) < time ("interp", false, 5, 100))
      ~detail:
        (Printf.sprintf "native %s vs interp %s"
           (Table.cell_seconds (time ("native", false, 5, 100)))
           (Table.cell_seconds (time ("interp", false, 5, 100))));
    check
      ~label:
        "table2: unspecialized-on-dynamic-compiler can beat \
         specialized-on-plain-JIT"
      ~ok:
        (List.exists
           (fun (m, p) ->
             time ("inline-cache", false, m, p) < time ("interp", true, m, p))
           [ (5, 100); (5, 50); (5, 25); (1, 100) ])
      ~detail:"crossover found (cf. paper Section 5 discussion of HotSpot)"
  ]
