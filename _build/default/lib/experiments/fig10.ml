(* Figure 10: specialization w.r.t. structure plus the positions at which a
   modified object may occur — here, only the last element of each
   modifiable list. Eliminated tests scale with list length, so this is the
   configuration with the largest wins. Paper shape: 5x to 15x. *)

open Ickpt_harness
open Ickpt_backend

let name = "fig10"

let title = "Figure 10: specialization w.r.t. structure + last-element-only"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:
        [ "len"; "ints"; "mod lists"; "%mod"; "generic"; "specialized";
          "speedup" ]
  in
  let results = ref [] in
  List.iter
    (fun list_len ->
      List.iter
        (fun n_int_fields ->
          List.iter
            (fun modified_lists ->
              List.iter
                (fun pct ->
                  let cfg =
                    Workload.config ~scale ~list_len ~n_int_fields ~pct
                      ~modified_lists ~last_only:true
                  in
                  let generic, spec, speedup =
                    Workload.compare_runners cfg
                      ~baseline:(fun _ -> Backend.native.Backend.run_generic)
                      ~subject:(fun t ->
                        Workload.specialized Backend.native
                          (Ickpt_synth.Synth.shape_last_only t))
                  in
                  results :=
                    ((list_len, n_int_fields, modified_lists, pct), speedup)
                    :: !results;
                  Table.add_row table
                    [ string_of_int list_len;
                      string_of_int n_int_fields;
                      string_of_int modified_lists;
                      string_of_int pct;
                      Table.cell_seconds generic.Workload.seconds;
                      Table.cell_seconds spec.Workload.seconds;
                      Table.cell_speedup speedup ])
                [ 100; 50; 25 ])
            [ 1; 3; 5 ])
        [ 1; 10 ])
    [ 1; 5 ];
  Format.fprintf ppf "%a@." Table.pp table;
  let sp key = List.assoc key !results in
  let open Workload in
  let len5 =
    List.filter_map
      (fun ((l, _, _, _), s) -> if l = 5 then Some s else None)
      !results
  in
  [ check ~label:"fig10: long lists reach large speedups (paper: 5-15x)"
      ~ok:(List.fold_left max 0.0 len5 >= 5.0)
      ~detail:
        (Printf.sprintf "max len-5 speedup %.2fx" (List.fold_left max 0.0 len5));
    check ~label:"fig10: position knowledge beats list knowledge (len 5)"
      ~ok:(sp (5, 1, 5, 100) > 1.5)
      ~detail:
        (Printf.sprintf "all-lists last-only speedup %.2fx" (sp (5, 1, 5, 100)));
    check ~label:"fig10: fewer modifiable lists => bigger speedup"
      ~ok:(sp (5, 10, 1, 100) >= sp (5, 10, 5, 100) *. 0.9)
      ~detail:
        (Printf.sprintf "1:%.2fx 5:%.2fx" (sp (5, 10, 1, 100))
           (sp (5, 10, 5, 100))) ]
