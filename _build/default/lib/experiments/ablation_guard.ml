(* Extension (not in the paper): what does safety cost? The paper trusts
   the programmer's specialization classes; our Guard validates them at run
   time before each specialized checkpoint. This experiment prices that
   validation against the specialization win it protects. *)

open Ickpt_harness
open Ickpt_backend
open Ickpt_synth

let name = "guards"

let title = "Ablation (extension): cost of guarded specialization"

let run ~scale ppf =
  let table =
    Table.create ~title
      ~columns:
        [ "config"; "generic"; "specialized"; "guarded spec"; "guard overhead" ]
  in
  let results = ref [] in
  List.iter
    (fun (label, modified_lists, last_only) ->
      let cfg =
        Workload.config ~scale ~list_len:5 ~n_int_fields:10 ~pct:50
          ~modified_lists ~last_only
      in
      let shape_of (t : Synth.t) =
        if last_only then Synth.shape_last_only t
        else Synth.shape_modified_lists t
      in
      let generic, spec, _ =
        Workload.compare_runners cfg
          ~baseline:(fun _ -> Backend.native.Backend.run_generic)
          ~subject:(fun t -> Workload.specialized Backend.native (shape_of t))
      in
      let t = Synth.build cfg in
      let shape = shape_of t in
      let guarded =
        Jspec.Guard.checked shape
          (Jspec.Compile.residual (Jspec.Pe.specialize shape))
      in
      let g = Workload.measure t guarded in
      let overhead = g.Workload.seconds /. spec.Workload.seconds in
      results := (label, spec.Workload.seconds, g.Workload.seconds, generic.Workload.seconds) :: !results;
      Table.add_row table
        [ label;
          Table.cell_seconds generic.Workload.seconds;
          Table.cell_seconds spec.Workload.seconds;
          Table.cell_seconds g.Workload.seconds;
          Printf.sprintf "%.2fx" overhead ])
    [ ("5 lists any position", 5, false);
      ("1 list any position", 1, false);
      ("1 list last only", 1, true) ];
  Format.fprintf ppf "%a@." Table.pp table;
  let open Workload in
  [ check ~label:"guards: validation costs something"
      ~ok:
        (List.for_all (fun (_, spec, guarded, _) -> guarded >= spec *. 0.9)
           !results)
      ~detail:"guarded >= unguarded specialized (modulo noise)";
    check
      ~label:
        "guards: validation costs about one structure traversal (bounded by \
         2x the generic walk)"
      ~ok:
        (List.for_all
           (fun (_, spec, guarded, generic) ->
             guarded -. spec < generic *. 2.0)
           !results)
      ~detail:
        "the guard re-walks the declared shape, so its cost tracks the \
         traversal the specialization eliminated — safety trades away the \
         traversal win but keeps the recording win" ]
