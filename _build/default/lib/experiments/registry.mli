(** The experiment registry: every table and figure of the paper's
    evaluation, runnable by name. *)

type experiment = {
  name : string;  (** e.g. "table1", "fig7" *)
  title : string;
  run : scale:Workload.scale -> Format.formatter -> Workload.check list;
}

val all : experiment list
(** In paper order — table1, fig7, fig8, fig9, fig10, fig11, table2 —
    followed by the extension ablations "recovery" and "guards". *)

val find : string -> experiment option

val run_all :
  ?names:string list -> scale:Workload.scale -> Format.formatter ->
  (string * Workload.check list) list
(** Run the selected experiments (all by default), printing each table as
    it completes, and return the shape-check results per experiment. *)
