(** Shared machinery for the evaluation experiments: scaled workload
    construction, steady-state measurement, and qualitative shape checks.

    Absolute times depend on the host; what the experiments assert (and
    what {!check} records) are the paper's {e relationships}: who wins, how
    speedups move along each axis, where crossovers sit. *)

open Ickpt_synth

type scale = float
(** 1.0 = the paper's 20,000 structures; the default bench run uses 0.25. *)

val structures : scale -> int

val config :
  scale:scale -> list_len:int -> n_int_fields:int -> pct:int ->
  modified_lists:int -> last_only:bool -> Synth.config

type measured = {
  bytes : int;  (** checkpoint size of the first (recorded) run *)
  seconds : float;  (** best-of-[repeats] construction time *)
}

val measure :
  ?repeats:int -> Synth.t ->
  (Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit) -> measured
(** Steady-state measurement: each repetition applies one mutation round
    (per the population's configuration) and times a checkpoint of every
    structure. The first repetition's byte count is reported; subsequent
    repetitions keep the fastest wall-clock time. Default 3 repetitions. *)

(** {1 Ready-made runners} *)

val generic_core : Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit
(** The hand-written generic incremental checkpointer (reference
    implementation, used for the full-vs-incremental comparison). *)

val full_core : Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit
(** Plain full checkpointing ({!Ickpt_core.Checkpointer.full_tree}). *)

val specialized :
  Ickpt_backend.Backend.t -> Jspec.Sclass.shape ->
  Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit

(** {1 Shape checks} *)

type check = { label : string; ok : bool; detail : string }

val check : label:string -> ok:bool -> detail:string -> check

val pp_check : Format.formatter -> check -> unit

val pp_checks : Format.formatter -> check list -> unit

val all_ok : check list -> bool

val compare_runners :
  ?repeats:int -> Synth.config ->
  baseline:(Synth.t -> Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit) ->
  subject:(Synth.t -> Ickpt_stream.Out_stream.t -> Ickpt_runtime.Model.obj -> unit) ->
  measured * measured * float
(** Build two identically-seeded populations (so object ids and mutation
    sequences coincide), measure each runner on its own population, and
    return [(baseline, subject, baseline.seconds /. subject.seconds)]. *)
