(** Checkpoint-kind policies: when an application checkpoints repeatedly
    (e.g. once per analysis iteration, Section 4.2 of the paper), the policy
    decides whether the next checkpoint is full or incremental. *)

type t =
  | Always_full  (** the paper's "full checkpointing" baseline *)
  | Incremental_after_base
      (** one full checkpoint, then incrementals forever (the paper's
          incremental mode) *)
  | Full_every of int
      (** a full checkpoint every [n] checkpoints, incrementals between —
          bounds chain length and recovery time *)
  | Chain_bytes_limit of int
      (** take a full checkpoint whenever the accumulated incremental bytes
          since the last full exceed the limit *)

val pp : Format.formatter -> t -> unit

val decide : t -> Chain.t -> Segment.kind
(** The kind the next checkpoint should use, given the chain so far.
    Always [Full] on an empty chain, whatever the policy. *)
