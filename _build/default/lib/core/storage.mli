(** Stable storage for checkpoint chains: an append-only log file of encoded
    segments. The paper writes checkpoints "from the output stream to stable
    storage asynchronously"; here the construction cost (what the paper
    measures) is separated from the write-out, and recovery tolerates a torn
    final segment — the normal outcome of a crash mid-write. *)

type load_result = {
  segments : Segment.t list;  (** oldest first, every fully intact segment *)
  torn_tail : bool;  (** true when trailing bytes failed to decode *)
  bytes_read : int;
}

val append : path:string -> Segment.t -> unit
(** Append one encoded segment to the log, creating the file if needed. *)

val write_chain : path:string -> Chain.t -> unit
(** Truncate and write out every segment of the chain. *)

val load : path:string -> load_result
(** Read back every decodable segment. A corrupt or truncated tail sets
    [torn_tail] instead of raising; corruption {e before} the tail also
    stops the scan there (later segments are unreachable without framing
    resync, which we deliberately do not attempt). *)

val load_chain : Ickpt_runtime.Schema.t -> path:string -> Chain.t * bool
(** Rebuild a {!Chain.t} from the intact prefix of the log. Incremental
    segments that precede the first full segment (possible when the log
    was pruned externally) are rejected as {!Chain.Invalid}. Returns the
    chain and the [torn_tail] flag. *)
