type load_result = {
  segments : Segment.t list;
  torn_tail : bool;
  bytes_read : int;
}

let append ~path seg =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Segment.encode seg))

let write_chain ~path chain =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun seg -> output_string oc (Segment.encode seg))
        (Chain.segments chain))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  let data = if Sys.file_exists path then read_file path else "" in
  let rec go acc pos =
    if pos >= String.length data then
      { segments = List.rev acc; torn_tail = false; bytes_read = pos }
    else
      match Segment.decode data ~pos with
      | seg, next -> go (seg :: acc) next
      | exception Ickpt_stream.In_stream.Corrupt _ ->
          { segments = List.rev acc; torn_tail = true; bytes_read = pos }
  in
  go [] 0

let load_chain schema ~path =
  let { segments; torn_tail; _ } = load ~path in
  let chain = Chain.create schema in
  List.iter (Chain.append chain) segments;
  (chain, torn_tail)
