
type change =
  | Added of int
  | Removed of int
  | Int_changed of { id : int; slot : int; before : int; after : int }
  | Child_changed of { id : int; slot : int; before : int; after : int }
  | Class_changed of { id : int; before : int; after : int }

let pp_change ppf = function
  | Added id -> Format.fprintf ppf "+ object %d" id
  | Removed id -> Format.fprintf ppf "- object %d" id
  | Int_changed { id; slot; before; after } ->
      Format.fprintf ppf "~ object %d ints[%d]: %d -> %d" id slot before after
  | Child_changed { id; slot; before; after } ->
      Format.fprintf ppf "~ object %d children[%d]: %d -> %d" id slot before
        after
  | Class_changed { id; before; after } ->
      Format.fprintf ppf "~ object %d class: %d -> %d" id before after

let accumulate schema segs =
  let table = Restore.empty_table () in
  List.iter (Restore.apply_segment schema table) segs;
  table

let segments schema ~before ~after =
  let tb = accumulate schema before and ta = accumulate schema after in
  let changes = ref [] in
  let add c = changes := c :: !changes in
  Restore.iter_table tb (fun id (r_before : Restore.record) ->
      match Restore.find_table ta id with
      | None -> add (Removed id)
      | Some r_after ->
          if r_before.Restore.rec_kid <> r_after.Restore.rec_kid then
            add
              (Class_changed
                 { id; before = r_before.Restore.rec_kid;
                   after = r_after.Restore.rec_kid })
          else begin
            Array.iteri
              (fun slot v ->
                let v' = r_after.Restore.rec_ints.(slot) in
                if v <> v' then
                  add (Int_changed { id; slot; before = v; after = v' }))
              r_before.Restore.rec_ints;
            Array.iteri
              (fun slot v ->
                let v' = r_after.Restore.rec_child_ids.(slot) in
                if v <> v' then
                  add (Child_changed { id; slot; before = v; after = v' }))
              r_before.Restore.rec_child_ids
          end);
  Restore.iter_table ta (fun id _ ->
      if Option.is_none (Restore.find_table tb id) then add (Added id));
  let key = function
    | Added id | Removed id -> (id, -1)
    | Class_changed { id; _ } -> (id, -2)
    | Int_changed { id; slot; _ } -> (id, slot)
    | Child_changed { id; slot; _ } -> (id, 1000 + slot)
  in
  List.sort (fun a b -> compare (key a) (key b)) !changes

let chains a b =
  let schema = Chain.schema a in
  segments schema ~before:(Chain.segments a) ~after:(Chain.segments b)

let summary changes =
  let added = ref 0 and removed = ref 0 in
  let touched = Hashtbl.create 16 in
  List.iter
    (function
      | Added _ -> incr added
      | Removed _ -> incr removed
      | Int_changed { id; _ } | Child_changed { id; _ } | Class_changed { id; _ }
        ->
          Hashtbl.replace touched id ())
    changes;
  Printf.sprintf "%d added, %d removed, %d objects changed" !added !removed
    (Hashtbl.length touched)
