type t =
  | Always_full
  | Incremental_after_base
  | Full_every of int
  | Chain_bytes_limit of int

let pp ppf = function
  | Always_full -> Format.pp_print_string ppf "always-full"
  | Incremental_after_base -> Format.pp_print_string ppf "incremental"
  | Full_every n -> Format.fprintf ppf "full-every-%d" n
  | Chain_bytes_limit n -> Format.fprintf ppf "chain-bytes-limit-%d" n

(* Newest-first walk accumulating incremental bytes until the first full
   segment. *)
let bytes_since_last_full chain =
  let rec until_full acc = function
    | [] -> acc
    | seg :: rest -> (
        match seg.Segment.kind with
        | Segment.Full -> acc
        | Segment.Incremental -> until_full (acc + Segment.body_size seg) rest)
  in
  until_full 0 (List.rev (Chain.segments chain))

let decide t chain =
  if Chain.next_kind_is_full chain then Segment.Full
  else
    match t with
    | Always_full -> Segment.Full
    | Incremental_after_base -> Segment.Incremental
    | Full_every n ->
        if n <= 0 then invalid_arg "Policy.Full_every: n must be positive";
        if Chain.next_seq chain mod n = 0 then Segment.Full
        else Segment.Incremental
    | Chain_bytes_limit limit ->
        if bytes_since_last_full chain > limit then Segment.Full
        else Segment.Incremental
