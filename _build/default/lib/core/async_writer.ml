type state = Running | Closed | Failed of exn

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  drained : Condition.t;
  queue : Segment.t Queue.t;
  queue_limit : int;
  mutable state : state;
  mutable in_flight : bool;  (* a segment is being written right now *)
  mutable thread : Thread.t option;
  oc : out_channel;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let writer_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if Queue.is_empty t.queue then
        match t.state with
        | Closed | Failed _ ->
            Mutex.unlock t.mutex;
            None
        | Running ->
            Condition.wait t.not_empty t.mutex;
            wait ()
      else begin
        let seg = Queue.pop t.queue in
        t.in_flight <- true;
        Condition.broadcast t.not_full;
        Mutex.unlock t.mutex;
        Some seg
      end
    in
    match wait () with
    | None -> ()
    | Some seg ->
        (match output_string t.oc (Segment.encode seg) with
        | () ->
            flush t.oc;
            locked t (fun () ->
                t.in_flight <- false;
                Condition.broadcast t.drained)
        | exception e ->
            locked t (fun () ->
                t.in_flight <- false;
                t.state <- Failed e;
                Condition.broadcast t.drained;
                Condition.broadcast t.not_full));
        next ()
  in
  next ()

let create ?(queue_limit = 64) ~path () =
  if queue_limit < 1 then invalid_arg "Async_writer.create: queue_limit < 1";
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  let t =
    { mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      queue_limit;
      state = Running;
      in_flight = false;
      thread = None;
      oc }
  in
  t.thread <- Some (Thread.create writer_loop t);
  t

let check_state t =
  match t.state with
  | Running -> ()
  | Closed -> failwith "Async_writer: closed"
  | Failed e -> failwith ("Async_writer: writer failed: " ^ Printexc.to_string e)

let enqueue t seg =
  locked t (fun () ->
      check_state t;
      while Queue.length t.queue >= t.queue_limit && t.state = Running do
        Condition.wait t.not_full t.mutex
      done;
      check_state t;
      Queue.push seg t.queue;
      Condition.signal t.not_empty)

let flush t =
  locked t (fun () ->
      while
        (not (Queue.is_empty t.queue && not t.in_flight))
        && t.state = Running
      do
        Condition.wait t.drained t.mutex
      done;
      match t.state with Failed _ -> check_state t | Running | Closed -> ())

let pending t =
  locked t (fun () -> Queue.length t.queue + if t.in_flight then 1 else 0)

let close t =
  let join =
    locked t (fun () ->
        match t.state with
        | Closed -> None
        | Running | Failed _ ->
            (* Let the thread drain the queue, then exit. *)
            (match t.state with Running -> t.state <- Closed | _ -> ());
            Condition.broadcast t.not_empty;
            Condition.broadcast t.not_full;
            t.thread)
  in
  match join with
  | None -> ()
  | Some thread ->
      (* The writer drains remaining segments before observing Closed:
         writer_loop only exits on an empty queue. *)
      Thread.join thread;
      locked t (fun () -> t.thread <- None);
      close_out_noerr t.oc
