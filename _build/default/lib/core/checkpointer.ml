open Ickpt_runtime
open Ickpt_stream

type stats = {
  mutable visited : int;
  mutable recorded : int;
  mutable skipped : int;
}

let fresh_stats () = { visited = 0; recorded = 0; skipped = 0 }

(* The paper's Figure 1, [Checkpoint.checkpoint]. The two [Model.record]/
   [Model.fold] calls are virtual dispatches through the vtable. *)
let rec visit_incremental d stats o =
  stats.visited <- stats.visited + 1;
  let info = o.Model.info in
  if info.Model.modified then begin
    Out_stream.write_int d info.Model.id;
    Out_stream.write_int d o.Model.klass.Model.kid;
    Model.record o d;
    info.Model.modified <- false;
    stats.recorded <- stats.recorded + 1
  end
  else stats.skipped <- stats.skipped + 1;
  Model.fold o (visit_incremental d stats)

let incremental ?(stats = fresh_stats ()) d root = visit_incremental d stats root

let full ?(stats = fresh_stats ()) d root =
  let seen = Hashtbl.create 1024 in
  let rec visit o =
    stats.visited <- stats.visited + 1;
    let id = o.Model.info.Model.id in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      Out_stream.write_int d id;
      Out_stream.write_int d o.Model.klass.Model.kid;
      Model.record o d;
      o.Model.info.Model.modified <- false;
      stats.recorded <- stats.recorded + 1;
      Model.fold o visit
    end
  in
  visit root

let incremental_many ?stats d roots =
  List.iter (incremental ?stats d) roots

let full_many ?(stats = fresh_stats ()) d roots =
  (* Share the visited set across roots so an object reachable from two
     roots is still recorded once. *)
  let seen = Hashtbl.create 1024 in
  let rec visit o =
    stats.visited <- stats.visited + 1;
    let id = o.Model.info.Model.id in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      Out_stream.write_int d id;
      Out_stream.write_int d o.Model.klass.Model.kid;
      Model.record o d;
      o.Model.info.Model.modified <- false;
      stats.recorded <- stats.recorded + 1;
      Model.fold o visit
    end
  in
  List.iter visit roots

let rec visit_full_tree d stats o =
  stats.visited <- stats.visited + 1;
  Out_stream.write_int d o.Model.info.Model.id;
  Out_stream.write_int d o.Model.klass.Model.kid;
  Model.record o d;
  o.Model.info.Model.modified <- false;
  stats.recorded <- stats.recorded + 1;
  Model.fold o (visit_full_tree d stats)

let full_tree ?(stats = fresh_stats ()) d root = visit_full_tree d stats root

let full_tree_many ?stats d roots = List.iter (full_tree ?stats d) roots
