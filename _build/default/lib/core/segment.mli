(** One checkpoint segment: a framed, checksummed blob holding the records
    produced by a single run of a checkpointer.

    Wire layout:
    {v
    magic   fixed32  "ICKP"
    version byte
    kind    byte     0 = full, 1 = incremental
    seq     varint   position in the chain (0-based)
    nroots  varint   number of root object ids
    roots   varint*  root ids, in checkpoint order
    len     varint   body length in bytes
    body    bytes    concatenated object records
    crc     fixed32  CRC-32 of everything above
    v} *)

type kind = Full | Incremental

type t = {
  kind : kind;
  seq : int;
  roots : int list;  (** ids of the roots the checkpoint was taken from *)
  body : string;  (** object records as written by {!Checkpointer} *)
}

val version : int

val pp_kind : Format.formatter -> kind -> unit

val encode : t -> string

val decode : string -> pos:int -> t * int
(** [decode s ~pos] reads one segment starting at [pos] and returns it with
    the offset just past it.
    @raise Ickpt_stream.In_stream.Corrupt on bad magic, version, kind,
    truncation or checksum mismatch. *)

val decode_all : string -> t list
(** Decode segments back-to-back until end of input. *)

val body_size : t -> int

val encoded_size : t -> int
