(** Checkpoint diffing: compare the object states captured by two
    checkpoints (or chains). Used by tests and as a debugging tool — e.g.
    to see exactly which annotations an analysis iteration changed, or to
    audit that a specialized checkpoint captured the same state as a
    generic one. *)



type change =
  | Added of int  (** object id present only in the newer state *)
  | Removed of int
  | Int_changed of { id : int; slot : int; before : int; after : int }
  | Child_changed of { id : int; slot : int; before : int; after : int }
      (** child ids; {!Model.null_id} encodes absence *)
  | Class_changed of { id : int; before : int; after : int }

val pp_change : Format.formatter -> change -> unit

val segments :
  Ickpt_runtime.Schema.t -> before:Segment.t list -> after:Segment.t list -> change list
(** Diff the accumulated (newest-wins) states of two segment sequences.
    Changes are sorted by object id; slots ascending within an object. *)

val chains : Chain.t -> Chain.t -> change list
(** [chains a b] diffs the states captured by two chains (which must share
    a schema). *)

val summary : change list -> string
(** e.g. "3 added, 0 removed, 17 objects changed". *)
