(** The generic checkpoint drivers — the paper's Figure 1.

    {!incremental} implements the incremental algorithm verbatim: visit an
    object; if its [modified] flag is set, write its id and class id, invoke
    its virtual [record] method and reset the flag; then always invoke the
    virtual [fold] method to visit the children. Unmodified objects cost a
    test and a traversal but contribute no bytes.

    {!full} records every reachable object unconditionally (each exactly
    once, a visited set handles shared substructure) and resets all flags.

    Both produce a stream of records decodable by {!Restore} given the same
    {!Ickpt_runtime.Schema}. Object graphs must be acyclic (the paper's
    stated assumption); [fold] on a cyclic graph would not terminate. *)

open Ickpt_runtime

type stats = {
  mutable visited : int;  (** objects traversed (tests executed) *)
  mutable recorded : int;  (** objects whose state was written *)
  mutable skipped : int;  (** objects visited but unmodified *)
}

val fresh_stats : unit -> stats

val incremental : ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Checkpoint the graph rooted at the argument, recording only modified
    objects, via virtual [record]/[fold] dispatch. Resets flags of recorded
    objects. *)

val full : ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Record every reachable object once, regardless of flags; resets all
    flags so a subsequent incremental checkpoint starts from a clean base. *)

val incremental_many :
  ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj list -> unit
(** Apply {!incremental} to each root in order (the paper's "the user
    program then applies the checkpoint method to the root of each compound
    structure"). *)

val full_many :
  ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj list -> unit

val full_tree : ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** Like {!full} but without the visited set: every object reachable along
    every path is recorded unconditionally — the paper's plain "full
    checkpointing". On trees this is equivalent to {!full} and faster; on
    DAGs shared objects are recorded once per path (larger checkpoints,
    identical restored state, since records are complete and idempotent).
    Must not be used on cyclic graphs. *)

val full_tree_many :
  ?stats:stats -> Ickpt_stream.Out_stream.t -> Model.obj list -> unit
