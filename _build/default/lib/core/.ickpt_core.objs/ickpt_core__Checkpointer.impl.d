lib/core/checkpointer.ml: Hashtbl Ickpt_runtime Ickpt_stream List Model Out_stream
