lib/core/diff.mli: Chain Format Ickpt_runtime Segment
