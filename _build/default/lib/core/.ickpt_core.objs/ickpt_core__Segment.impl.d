lib/core/segment.ml: Buffer Char Crc32 Format Ickpt_stream In_stream List Out_stream Printf String
