lib/core/chain.ml: Checkpointer Format Ickpt_runtime Ickpt_stream In_stream List Model Out_stream Restore Schema Segment
