lib/core/async_writer.mli: Segment
