lib/core/policy.mli: Chain Format Segment
