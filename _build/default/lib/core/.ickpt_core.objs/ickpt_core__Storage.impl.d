lib/core/storage.ml: Chain Fun Ickpt_stream List Segment String Sys
