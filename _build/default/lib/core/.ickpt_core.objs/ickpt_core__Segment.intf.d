lib/core/segment.mli: Format
