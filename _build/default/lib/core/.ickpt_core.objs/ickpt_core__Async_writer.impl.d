lib/core/async_writer.ml: Condition Fun Mutex Printexc Queue Segment Thread
