lib/core/policy.ml: Chain Format List Segment
