lib/core/restore.mli: Heap Ickpt_runtime Model Schema Segment
