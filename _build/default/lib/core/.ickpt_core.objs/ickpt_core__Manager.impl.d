lib/core/manager.ml: Async_writer Chain Ickpt_runtime Ickpt_stream List Model Out_stream Policy Schema Segment Storage
