lib/core/manager.mli: Chain Heap Ickpt_runtime Ickpt_stream Model Policy Schema Segment
