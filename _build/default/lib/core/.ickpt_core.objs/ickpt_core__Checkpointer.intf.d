lib/core/checkpointer.mli: Ickpt_runtime Ickpt_stream Model
