lib/core/chain.mli: Checkpointer Heap Ickpt_runtime Model Schema Segment
