lib/core/storage.mli: Chain Ickpt_runtime Segment
