lib/core/diff.ml: Array Chain Format Hashtbl List Option Printf Restore
