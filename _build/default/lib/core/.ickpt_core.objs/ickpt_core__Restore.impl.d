lib/core/restore.ml: Array Format Hashtbl Heap Ickpt_runtime Ickpt_stream In_stream List Model Schema Segment
