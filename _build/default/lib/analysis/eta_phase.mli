(** Evaluation-time analysis (paper Section 4.1): determines, for each
    statement the binding-time analysis marked static, whether it is
    actually {e evaluable at specialization time} — i.e. every variable it
    reads is defined by specialization-time computations and it is not
    nested under run-time control. Statements marked dynamic by BTA are
    run-time by definition.

    Reads the BT annotations already stored in {!Attrs}, so it must run
    after {!Bta_phase} — matching the paper's phase ordering, where each
    phase reads but does not modify the results of earlier phases. *)

val run :
  ?on_iteration:(int -> unit) -> ?min_iterations:int ->
  division:string list -> Minic.Check.env -> Attrs.t -> int
(** Returns the iteration count; stores {!Attrs.et_spec_time} /
    {!Attrs.et_run_time} per statement. *)
