(** Side-effect analysis (paper Section 4.1): for every statement, the set
    of global variables it may read and write, including the effects of the
    functions it calls. Function summaries are computed by fixpoint
    iteration over the call graph; each whole-program round stores the
    current per-statement sets into the {!Attrs} store and invokes the
    [on_iteration] callback (where the engine takes a checkpoint). *)

module Int_set : Set.S with type elt = int

type summary = { reads : Int_set.t; writes : Int_set.t }

val run :
  ?on_iteration:(int -> unit) -> ?min_iterations:int -> Minic.Check.env ->
  Attrs.t -> int
(** Returns the number of iterations executed (at least [min_iterations],
    default 1, and at least until the summaries and stored sets reach their
    fixpoint). The callback receives the 0-based iteration index after the
    iteration's results are stored. *)

val summaries : Minic.Check.env -> (string * summary) list
(** The converged per-function summaries (for tests and inspection). *)
