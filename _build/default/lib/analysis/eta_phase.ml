open Minic.Ast

let spec = Attrs.et_spec_time
let run_t = Attrs.et_run_time

let join a b = max a b

type state = {
  var_et : (string * string, int) Hashtbl.t;
  fun_ctx : (string, int) Hashtbl.t;
  fun_ret : (string, int) Hashtbl.t;
  mutable changed : bool;
}

let lookup tbl key default =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> default

let raise_to st tbl key v =
  let old = lookup tbl key spec in
  let v' = join old v in
  if v' <> old then begin
    Hashtbl.replace tbl key v';
    st.changed <- true
  end

let var_key (env : Minic.Check.env) fname x =
  let f =
    List.find (fun f -> f.f_name = fname) env.Minic.Check.program.funcs
  in
  let is_local =
    List.mem x f.f_params || List.exists (fun l -> l.v_name = x) f.f_locals
  in
  if is_local then (fname, x) else ("", x)

let init ~division (env : Minic.Check.env) =
  let st =
    { var_et = Hashtbl.create 64;
      fun_ctx = Hashtbl.create 16;
      fun_ret = Hashtbl.create 16;
      changed = false }
  in
  List.iter
    (fun g ->
      let et = if List.mem g.v_name division then spec else run_t in
      Hashtbl.replace st.var_et ("", g.v_name) et)
    env.Minic.Check.program.globals;
  st

let round ~(env : Minic.Check.env) st attrs =
  let p = env.Minic.Check.program in
  let var_et fname x = lookup st.var_et (var_key env fname x) spec in
  let rec expr_et fname ctx e =
    match e with
    | E_int _ -> spec
    | E_var x -> var_et fname x
    | E_index (a, i) -> join (var_et fname a) (expr_et fname ctx i)
    | E_unop (_, e) -> expr_et fname ctx e
    | E_binop (_, l, r) -> join (expr_et fname ctx l) (expr_et fname ctx r)
    | E_call (g, args) ->
        let callee =
          match Minic.Ast.find_func p g with
          | Some f -> f
          | None -> invalid_arg ("Eta: call to unknown " ^ g)
        in
        List.iteri
          (fun i a ->
            let aet = expr_et fname ctx a in
            match List.nth_opt callee.f_params i with
            | Some param -> raise_to st st.var_et (g, param) (join aet ctx)
            | None -> ())
          args;
        raise_to st st.fun_ctx g ctx;
        lookup st.fun_ret g spec
  in
  let changed_store = ref false in
  let store sid et = if Attrs.set_et attrs sid et then changed_store := true in
  let rec stmt fname ctx s =
    (* A statement BTA marked dynamic is run-time outright; a static one is
       spec-time only if its parts and context are. *)
    let bta_dynamic = Attrs.get_bt attrs s.sid = Attrs.bt_dynamic in
    let et =
      match s.node with
      | S_assign (x, e) ->
          let et =
            if bta_dynamic then run_t else join ctx (expr_et fname ctx e)
          in
          raise_to st st.var_et (var_key env fname x) et;
          et
      | S_store (a, i, e) ->
          let et =
            if bta_dynamic then run_t
            else join ctx (join (expr_et fname ctx i) (expr_et fname ctx e))
          in
          raise_to st st.var_et (var_key env fname a) et;
          et
      | S_expr e ->
          if bta_dynamic then run_t else join ctx (expr_et fname ctx e)
      | S_return None -> if bta_dynamic then run_t else ctx
      | S_return (Some e) ->
          let et =
            if bta_dynamic then run_t else join ctx (expr_et fname ctx e)
          in
          raise_to st st.fun_ret fname et;
          et
      | S_if (c, t, f) ->
          let cet =
            if bta_dynamic then run_t else join ctx (expr_et fname ctx c)
          in
          List.iter (stmt fname cet) t;
          List.iter (stmt fname cet) f;
          cet
      | S_while (c, b) ->
          let cet =
            if bta_dynamic then run_t else join ctx (expr_et fname ctx c)
          in
          List.iter (stmt fname cet) b;
          cet
    in
    store s.sid et
  in
  List.iter
    (fun f ->
      let ctx = lookup st.fun_ctx f.f_name spec in
      List.iter (stmt f.f_name ctx) f.f_body)
    p.funcs;
  !changed_store

let run ?(on_iteration = fun _ -> ()) ?(min_iterations = 1) ~division env attrs
    =
  let st = init ~division env in
  let rec go i =
    st.changed <- false;
    let stored_changed = round ~env st attrs in
    on_iteration i;
    if st.changed || stored_changed || i + 1 < min_iterations then go (i + 1)
    else i + 1
  in
  go 0
