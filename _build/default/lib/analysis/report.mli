(** Human-readable summaries of the analysis results stored in an
    {!Attrs} store — the per-function view [minic_analyze] prints. *)

type func_summary = {
  fname : string;
  statements : int;
  bt_static : int;
  bt_dynamic : int;
  et_spec : int;
  et_run : int;
  globals_read : int;  (** distinct globals read across the function *)
  globals_written : int;
}

val per_function : Minic.Check.env -> Attrs.t -> func_summary list
(** One summary per function, in program order. Call after the analyses
    have run. *)

val pp : Format.formatter -> func_summary list -> unit
(** An aligned table with a whole-program totals row. *)
