open Minic.Ast

module Int_set = Sea.Int_set

(* Liveness over main's top-level sequence, computed backwards under the
   converged side-effect summaries. A global is live at a program point if
   some later statement (or the return expression) may read it. Kills are
   ignored (liveness only grows), which is conservative in the right
   direction for removal. *)
let analyze (env : Minic.Check.env) =
  let summaries = Sea.summaries env in
  let summary_of f = List.assoc f summaries in
  let gid_set x =
    match Minic.Check.global_id env x with
    | Some id -> Int_set.singleton id
    | None -> Int_set.empty
  in
  let rec expr_reads e =
    match e with
    | E_int _ -> Int_set.empty
    | E_var x -> gid_set x
    | E_index (a, i) -> Int_set.union (gid_set a) (expr_reads i)
    | E_unop (_, e) -> expr_reads e
    | E_binop (_, l, r) -> Int_set.union (expr_reads l) (expr_reads r)
    | E_call (f, args) ->
        List.fold_left
          (fun acc a -> Int_set.union acc (expr_reads a))
          (summary_of f).Sea.reads args
  in
  (* Everything a statement could read, or write to an array it also keeps
     live (stores keep their own array live: partial updates). *)
  let rec stmt_touches s =
    match s.node with
    | S_assign (_, e) | S_expr e | S_return (Some e) -> expr_reads e
    | S_return None -> Int_set.empty
    | S_store (a, i, e) ->
        Int_set.union (gid_set a)
          (Int_set.union (expr_reads i) (expr_reads e))
    | S_if (c, t, f) ->
        List.fold_left
          (fun acc s -> Int_set.union acc (stmt_touches s))
          (expr_reads c) (t @ f)
    | S_while (c, b) ->
        List.fold_left
          (fun acc s -> Int_set.union acc (stmt_touches s))
          (expr_reads c) b
  in
  let main =
    match Minic.Ast.find_func env.Minic.Check.program "main" with
    | Some f -> f
    | None -> invalid_arg "Deadcode: no main"
  in
  (* Backwards over main's top-level statements. Only plain top-level call
     statements are removal candidates; everything else keeps what it
     touches live. *)
  let dead = ref [] in
  let live = ref Int_set.empty in
  List.iter
    (fun s ->
      match s.node with
      | S_expr (E_call (f, args)) ->
          let summ = summary_of f in
          if Int_set.inter summ.Sea.writes !live = Int_set.empty then
            dead := s.sid :: !dead
          else
            live :=
              List.fold_left
                (fun acc a -> Int_set.union acc (expr_reads a))
                (Int_set.union !live summ.Sea.reads)
                args
      | S_assign _ | S_expr _ | S_store _ | S_return _ | S_if _ | S_while _ ->
          live := Int_set.union !live (stmt_touches s))
    (List.rev main.f_body);
  !dead

let dead_statements env = analyze env

let eliminate env =
  let dead = analyze env in
  let p = env.Minic.Check.program in
  let funcs =
    List.map
      (fun f ->
        if f.f_name <> "main" then f
        else
          { f with
            f_body = List.filter (fun s -> not (List.mem s.sid dead)) f.f_body
          })
      p.funcs
  in
  (Minic.Ast.number { p with funcs }, List.length dead)
