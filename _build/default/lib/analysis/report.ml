type func_summary = {
  fname : string;
  statements : int;
  bt_static : int;
  bt_dynamic : int;
  et_spec : int;
  et_run : int;
  globals_read : int;
  globals_written : int;
}

module Int_set = Sea.Int_set

let per_function (env : Minic.Check.env) attrs =
  let acc = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (f : Minic.Ast.func) ->
      order := f.Minic.Ast.f_name :: !order;
      Hashtbl.replace acc f.Minic.Ast.f_name
        ( ref 0, ref 0, ref 0, ref 0, ref 0,
          ref Int_set.empty, ref Int_set.empty ))
    env.Minic.Check.program.Minic.Ast.funcs;
  Minic.Ast.iter_stmts env.Minic.Check.program (fun f s ->
      let n, bs, bd, es, er, reads, writes =
        Hashtbl.find acc f.Minic.Ast.f_name
      in
      incr n;
      let sid = s.Minic.Ast.sid in
      let bt = Attrs.get_bt attrs sid in
      if bt = Attrs.bt_static then incr bs
      else if bt = Attrs.bt_dynamic then incr bd;
      let et = Attrs.get_et attrs sid in
      if et = Attrs.et_spec_time then incr es
      else if et = Attrs.et_run_time then incr er;
      reads := Int_set.union !reads (Int_set.of_list (Attrs.get_reads attrs sid));
      writes :=
        Int_set.union !writes (Int_set.of_list (Attrs.get_writes attrs sid)));
  List.rev_map
    (fun fname ->
      let n, bs, bd, es, er, reads, writes = Hashtbl.find acc fname in
      { fname;
        statements = !n;
        bt_static = !bs;
        bt_dynamic = !bd;
        et_spec = !es;
        et_run = !er;
        globals_read = Int_set.cardinal !reads;
        globals_written = Int_set.cardinal !writes })
    !order

let pp ppf summaries =
  let open Ickpt_harness in
  let table =
    Table.create ~title:"analysis results by function"
      ~columns:
        [ "function"; "stmts"; "bt static"; "bt dynamic"; "et spec";
          "et run"; "reads"; "writes" ]
  in
  let add s =
    Table.add_row table
      [ s.fname; string_of_int s.statements; string_of_int s.bt_static;
        string_of_int s.bt_dynamic; string_of_int s.et_spec;
        string_of_int s.et_run; string_of_int s.globals_read;
        string_of_int s.globals_written ]
  in
  List.iter add summaries;
  let total f = List.fold_left (fun acc s -> acc + f s) 0 summaries in
  add
    { fname = "TOTAL";
      statements = total (fun s -> s.statements);
      bt_static = total (fun s -> s.bt_static);
      bt_dynamic = total (fun s -> s.bt_dynamic);
      et_spec = total (fun s -> s.et_spec);
      et_run = total (fun s -> s.et_run);
      globals_read = total (fun s -> s.globals_read);
      globals_written = total (fun s -> s.globals_written) };
  Table.pp ppf table
