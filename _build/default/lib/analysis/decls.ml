open Ickpt_runtime

module Int_set = Set.Make (Int)

let observe thunk =
  let dirty = ref Int_set.empty in
  let result =
    Barrier.with_trace
      (fun o -> dirty := Int_set.add o.Model.klass.Model.kid !dirty)
      thunk
  in
  (result, !dirty)

let shape_of_dirty attrs ~dirty_kids =
  let open Jspec.Sclass in
  let status_of (k : Model.klass) =
    if Int_set.mem k.Model.kid dirty_kids then Tracked else Clean
  in
  match Attrs.klasses attrs with
  | [ k_attr; k_se; k_varref; k_btentry; k_bt; k_etentry; k_et ] ->
      let lists =
        if Int_set.mem k_varref.Model.kid dirty_kids then Unknown
        else Clean_opaque
      in
      shape ~status:(status_of k_attr) k_attr
        [| Exact (shape ~status:(status_of k_se) k_se [| lists; lists |]);
           Exact
             (shape ~status:(status_of k_btentry) k_btentry
                [| Exact (leaf ~status:(status_of k_bt) k_bt) |]);
           Exact
             (shape ~status:(status_of k_etentry) k_etentry
                [| Exact (leaf ~status:(status_of k_et) k_et) |]) |]
  | _ -> invalid_arg "Decls.shape_of_dirty: unexpected klass list"

let infer attrs thunk =
  let result, dirty_kids = observe thunk in
  (result, shape_of_dirty attrs ~dirty_kids)
