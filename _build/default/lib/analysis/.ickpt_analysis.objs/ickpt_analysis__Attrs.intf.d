lib/analysis/attrs.mli: Heap Ickpt_runtime Jspec Model Schema
