lib/analysis/attrs.ml: Array Barrier Heap Ickpt_runtime Jspec List Model Schema
