lib/analysis/engine.ml: Array Attrs Bta_phase Chain Checkpointer Clock Eta_phase Float Format Ickpt_core Ickpt_harness Ickpt_runtime Ickpt_stream Jspec List Minic Model Option Sea Segment String
