lib/analysis/bta_phase.ml: Attrs Hashtbl List Minic
