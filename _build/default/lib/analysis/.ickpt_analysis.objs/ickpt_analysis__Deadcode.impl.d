lib/analysis/deadcode.ml: List Minic Sea
