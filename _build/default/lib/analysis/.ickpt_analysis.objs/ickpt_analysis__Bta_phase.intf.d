lib/analysis/bta_phase.mli: Attrs Minic
