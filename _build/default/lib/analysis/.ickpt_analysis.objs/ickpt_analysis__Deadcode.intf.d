lib/analysis/deadcode.mli: Minic
