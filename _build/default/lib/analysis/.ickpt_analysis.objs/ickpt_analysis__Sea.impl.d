lib/analysis/sea.ml: Attrs Hashtbl Int List Minic Set
