lib/analysis/engine.mli: Attrs Chain Format Ickpt_core Minic
