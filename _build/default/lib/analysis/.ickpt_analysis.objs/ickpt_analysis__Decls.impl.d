lib/analysis/decls.ml: Attrs Barrier Ickpt_runtime Int Jspec Model Set
