lib/analysis/eta_phase.mli: Attrs Minic
