lib/analysis/sea.mli: Attrs Minic Set
