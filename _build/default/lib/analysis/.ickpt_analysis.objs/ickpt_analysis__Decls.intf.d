lib/analysis/decls.mli: Attrs Jspec Set
