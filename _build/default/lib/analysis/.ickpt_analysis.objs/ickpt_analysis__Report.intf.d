lib/analysis/report.mli: Attrs Format Minic
