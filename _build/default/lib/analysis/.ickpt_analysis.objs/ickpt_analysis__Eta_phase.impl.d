lib/analysis/eta_phase.ml: Attrs Hashtbl List Minic
