lib/analysis/report.ml: Attrs Hashtbl Ickpt_harness List Minic Sea Table
