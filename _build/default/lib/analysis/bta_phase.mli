(** Binding-time analysis (paper Sections 3–4): given a division of the
    globals into specialization-time (static) and run-time (dynamic)
    inputs, annotate every statement with whether a specializer could
    reduce it. The analysis is a monotone whole-program fixpoint: variables
    only move static → dynamic; assignments under dynamic control make
    their targets dynamic; function parameters join over call sites.

    Each whole-program round stores the current annotation of every
    statement into {!Attrs} (only changed values dirty objects) and invokes
    [on_iteration] — the engine's checkpoint hook. *)

val run :
  ?on_iteration:(int -> unit) -> ?min_iterations:int ->
  division:string list -> Minic.Check.env -> Attrs.t -> int
(** [division] lists the static globals. Returns the iteration count. *)

val annotate : division:string list -> Minic.Check.env -> (int * int) list
(** Converged [(sid, bt)] pairs without touching an [Attrs] store, for
    tests. Values are {!Attrs.bt_static} / {!Attrs.bt_dynamic}. *)
