(** A consumer of the side-effect analysis: dead-store elimination over the
    analyzed program's top-level pipeline.

    The analyses the engine checkpoints exist to drive program
    transformation (in Tempo, specialization). This pass closes that loop
    for the reproduction: using the per-statement global read/write sets,
    it removes top-level call statements in [main] whose only effect is to
    write globals that nothing afterwards reads (and that don't feed
    [main]'s return value). On the generated image workload it discovers,
    for instance, that the histogram pass is dead.

    Conservative and sound: only statements of the form [f(...);] at the
    top level of [main], with no live writes, are candidates; liveness only
    grows (no kills), so control flow inside callees cannot be
    mis-modelled. Removal preserves {!Minic.Interp.run}'s result (this is
    property-tested). *)

val eliminate : Minic.Check.env -> Minic.Ast.program * int
(** Returns the transformed program and the number of statements removed.
    The result is renumbered ({!Minic.Ast.number}). *)

val dead_statements : Minic.Check.env -> int list
(** The sids that {!eliminate} would remove (before renumbering). *)
