open Minic.Ast

let s_ = Attrs.bt_static
let d_ = Attrs.bt_dynamic

let join a b = max a b

(* Mutable monotone state: every update can only raise a value (static ->
   dynamic), so chaotic iteration converges. *)
type state = {
  var_bt : (string * string, int) Hashtbl.t;  (* (fname|"", var) -> bt *)
  fun_ctx : (string, int) Hashtbl.t;  (* call-context bt per function *)
  fun_ret : (string, int) Hashtbl.t;
  mutable changed : bool;
}

let lookup tbl key default =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> default

let raise_to st tbl key v =
  let old = lookup tbl key s_ in
  let v' = join old v in
  if v' <> old then begin
    Hashtbl.replace tbl key v';
    st.changed <- true
  end

let init ~division (env : Minic.Check.env) =
  let st =
    { var_bt = Hashtbl.create 64;
      fun_ctx = Hashtbl.create 16;
      fun_ret = Hashtbl.create 16;
      changed = false }
  in
  List.iter
    (fun g ->
      let bt = if List.mem g.v_name division then s_ else d_ in
      Hashtbl.replace st.var_bt ("", g.v_name) bt)
    env.Minic.Check.program.globals;
  st

let var_key (env : Minic.Check.env) fname x =
  (* Locals shadow globals; a name not local to [fname] is global. *)
  let f =
    List.find (fun f -> f.f_name = fname) env.Minic.Check.program.funcs
  in
  let is_local =
    List.mem x f.f_params || List.exists (fun l -> l.v_name = x) f.f_locals
  in
  if is_local then (fname, x) else ("", x)

let round ~(env : Minic.Check.env) st ~annotate =
  let p = env.Minic.Check.program in
  let var_bt fname x = lookup st.var_bt (var_key env fname x) s_ in
  let rec expr_bt fname ctx e =
    match e with
    | E_int _ -> s_
    | E_var x -> var_bt fname x
    | E_index (a, i) -> join (var_bt fname a) (expr_bt fname ctx i)
    | E_unop (_, e) -> expr_bt fname ctx e
    | E_binop (_, l, r) -> join (expr_bt fname ctx l) (expr_bt fname ctx r)
    | E_call (g, args) ->
        let callee = match Minic.Ast.find_func p g with
          | Some f -> f
          | None -> invalid_arg ("Bta: call to unknown " ^ g)
        in
        List.iteri
          (fun i a ->
            let abt = expr_bt fname ctx a in
            match List.nth_opt callee.f_params i with
            | Some param -> raise_to st st.var_bt (g, param) (join abt ctx)
            | None -> ())
          args;
        raise_to st st.fun_ctx g ctx;
        lookup st.fun_ret g s_
  in
  let rec stmt fname ctx s =
    let bt =
      match s.node with
      | S_assign (x, e) ->
          let bt = join ctx (expr_bt fname ctx e) in
          raise_to st st.var_bt (var_key env fname x) bt;
          bt
      | S_store (a, i, e) ->
          let bt =
            join ctx (join (expr_bt fname ctx i) (expr_bt fname ctx e))
          in
          raise_to st st.var_bt (var_key env fname a) bt;
          bt
      | S_expr e -> join ctx (expr_bt fname ctx e)
      | S_return None -> ctx
      | S_return (Some e) ->
          let bt = join ctx (expr_bt fname ctx e) in
          raise_to st st.fun_ret fname bt;
          bt
      | S_if (c, t, f) ->
          let cbt = join ctx (expr_bt fname ctx c) in
          List.iter (stmt fname cbt) t;
          List.iter (stmt fname cbt) f;
          cbt
      | S_while (c, b) ->
          let cbt = join ctx (expr_bt fname ctx c) in
          List.iter (stmt fname cbt) b;
          cbt
    in
    annotate s.sid bt
  in
  List.iter
    (fun f ->
      let ctx = lookup st.fun_ctx f.f_name s_ in
      List.iter (stmt f.f_name ctx) f.f_body)
    p.funcs

let run ?(on_iteration = fun _ -> ()) ?(min_iterations = 1) ~division env attrs
    =
  let st = init ~division env in
  let rec go i =
    st.changed <- false;
    let stored_changed = ref false in
    round ~env st ~annotate:(fun sid bt ->
        if Attrs.set_bt attrs sid bt then stored_changed := true);
    on_iteration i;
    if st.changed || !stored_changed || i + 1 < min_iterations then go (i + 1)
    else i + 1
  in
  go 0

let annotate ~division env =
  let st = init ~division env in
  let result = Hashtbl.create 64 in
  let rec go () =
    st.changed <- false;
    round ~env st ~annotate:(Hashtbl.replace result);
    if st.changed then go ()
  in
  go ();
  Hashtbl.fold (fun sid bt acc -> (sid, bt) :: acc) result []
  |> List.sort compare
