open Minic.Ast

module Int_set = Set.Make (Int)

type summary = { reads : Int_set.t; writes : Int_set.t }

let empty_summary = { reads = Int_set.empty; writes = Int_set.empty }

let union a b =
  { reads = Int_set.union a.reads b.reads;
    writes = Int_set.union a.writes b.writes }

let equal_summary a b =
  Int_set.equal a.reads b.reads && Int_set.equal a.writes b.writes

(* Per-round recomputation of statement effects under the current function
   summaries. [store] persists per-statement sets into Attrs (when given). *)
let round (env : Minic.Check.env) summaries ~store =
  let p = env.Minic.Check.program in
  let summary_of fname =
    match Hashtbl.find_opt summaries fname with
    | Some s -> s
    | None -> empty_summary
  in
  let gid x = Minic.Check.global_id env x in
  let rec expr_effect e =
    match e with
    | E_int _ -> empty_summary
    | E_var x -> (
        match gid x with
        | Some id -> { empty_summary with reads = Int_set.singleton id }
        | None -> empty_summary)
    | E_index (a, i) ->
        let base =
          match gid a with
          | Some id -> { empty_summary with reads = Int_set.singleton id }
          | None -> empty_summary
        in
        union base (expr_effect i)
    | E_unop (_, e) -> expr_effect e
    | E_binop (_, l, r) -> union (expr_effect l) (expr_effect r)
    | E_call (g, args) ->
        List.fold_left
          (fun acc a -> union acc (expr_effect a))
          (summary_of g) args
  in
  let changed = ref false in
  let rec stmt_effect s =
    let eff =
      match s.node with
      | S_assign (x, e) -> (
          let rhs = expr_effect e in
          match gid x with
          | Some id -> { rhs with writes = Int_set.add id rhs.writes }
          | None -> rhs)
      | S_store (a, i, e) -> (
          let eff = union (expr_effect i) (expr_effect e) in
          match gid a with
          | Some id -> { eff with writes = Int_set.add id eff.writes }
          | None -> eff)
      | S_expr e -> expr_effect e
      | S_return None -> empty_summary
      | S_return (Some e) -> expr_effect e
      | S_if (c, t, f) ->
          List.fold_left
            (fun acc s -> union acc (stmt_effect s))
            (expr_effect c) (t @ f)
      | S_while (c, b) ->
          List.fold_left
            (fun acc s -> union acc (stmt_effect s))
            (expr_effect c) b
    in
    (match store with
    | None -> ()
    | Some attrs ->
        let r = Attrs.set_reads attrs s.sid (Int_set.elements eff.reads) in
        let w = Attrs.set_writes attrs s.sid (Int_set.elements eff.writes) in
        if r || w then changed := true);
    eff
  in
  let new_summaries = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let eff =
        List.fold_left (fun acc s -> union acc (stmt_effect s)) empty_summary
          f.f_body
      in
      Hashtbl.replace new_summaries f.f_name eff)
    p.funcs;
  let summaries_changed =
    List.exists
      (fun f ->
        not
          (equal_summary
             (match Hashtbl.find_opt summaries f.f_name with
             | Some s -> s
             | None -> empty_summary)
             (Hashtbl.find new_summaries f.f_name)))
      p.funcs
  in
  Hashtbl.reset summaries;
  Hashtbl.iter (Hashtbl.replace summaries) new_summaries;
  (summaries_changed, !changed)

let run ?(on_iteration = fun _ -> ()) ?(min_iterations = 1) env attrs =
  let summaries = Hashtbl.create 16 in
  let rec go i =
    let summaries_changed, stored_changed =
      round env summaries ~store:(Some attrs)
    in
    on_iteration i;
    if summaries_changed || stored_changed || i + 1 < min_iterations then
      go (i + 1)
    else i + 1
  in
  go 0

let summaries env =
  let summaries = Hashtbl.create 16 in
  let rec go () =
    let summaries_changed, _ = round env summaries ~store:None in
    if summaries_changed then go ()
  in
  go ();
  List.map
    (fun f -> (f.f_name, Hashtbl.find summaries f.f_name))
    env.Minic.Check.program.funcs
