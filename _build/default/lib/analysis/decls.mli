(** Automatic construction of specialization classes from observed
    modification patterns — the paper's stated future work ("we propose to
    automatically construct specialization classes based on an analysis of
    the data modification pattern of the program", Section 7).

    {!infer} runs one phase (or any code) under the write-barrier trace
    hook, records which classes were dirtied, and derives the attribute
    shape in which only those classes are [Tracked]. The result can be
    handed to {!Jspec.Pe.specialize} directly, and {!Jspec.Guard} can
    enforce it. *)

module Int_set : Set.S with type elt = int

val observe : (unit -> 'a) -> 'a * Int_set.t
(** Run a thunk under the barrier trace; returns the set of class ids of
    the objects dirtied by it. *)

val shape_of_dirty : Attrs.t -> dirty_kids:Int_set.t -> Jspec.Sclass.shape
(** The attribute shape in which a node is [Tracked] iff its class was
    observed dirty; side-effect lists become [Unknown] when [VarRef]
    objects were dirtied (their shape varies) and [Clean_opaque]
    otherwise. *)

val infer : Attrs.t -> (unit -> 'a) -> 'a * Jspec.Sclass.shape
(** [infer attrs thunk] = observe + {!shape_of_dirty}. Running the thunk's
    phase again under the returned shape's specialized checkpointing is
    sound if the phase keeps the same modification pattern. *)
