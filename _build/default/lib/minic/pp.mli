(** Pretty-printer for the simplified C. Output re-parses to an equal
    program ([Parser.parse (to_string p)] ≡ [p]); all [if]/[while] bodies
    are braced, matching the grammar {!Parser} accepts. *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val to_string : Ast.program -> string

val line_count : Ast.program -> int
(** Number of source lines the printed form occupies (the paper sizes its
    input as "a 750-line image manipulation program"). *)
