open Ast

(* Precedence levels for minimal parenthesization: higher binds tighter. *)
let binop_prec = function
  | B_or -> 1
  | B_and -> 2
  | B_lt | B_le | B_gt | B_ge | B_eq | B_ne -> 3
  | B_add | B_sub -> 4
  | B_mul | B_div | B_mod -> 5

(* The comparison level is non-associative in our grammar and || / && parse
   right-associated; printing conservatively parenthesizes any nested
   operator of equal precedence on the left of a comparison and on either
   side where associativity could differ. We keep it simple: parenthesize
   children whose precedence is <= the parent's, except the left child of
   left-associative arithmetic. *)
let rec pp_expr_prec prec ppf e =
  match e with
  | E_int n -> Format.pp_print_int ppf n
  | E_var x -> Format.pp_print_string ppf x
  | E_index (a, i) -> Format.fprintf ppf "%s[%a]" a (pp_expr_prec 0) i
  | E_unop (op, e) -> Format.fprintf ppf "%a%a" pp_unop op (pp_expr_prec 6) e
  | E_binop (op, l, r) ->
      let p = binop_prec op in
      let left_assoc = p >= 4 in
      let lp = if left_assoc then p - 1 else p in
      let body ppf () =
        Format.fprintf ppf "%a %a %a"
          (pp_expr_prec lp) l pp_binop op (pp_expr_prec p) r
      in
      if p <= prec then Format.fprintf ppf "(%a)" body ()
      else body ppf ()
  | E_call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_prec 0))
        args

let pp_expr = pp_expr_prec 0

let rec pp_stmt ppf s =
  match s.node with
  | S_assign (x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | S_store (a, i, e) ->
      Format.fprintf ppf "%s[%a] = %a;" a pp_expr i pp_expr e
  | S_expr e -> Format.fprintf ppf "%a;" pp_expr e
  | S_return None -> Format.pp_print_string ppf "return;"
  | S_return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | S_if (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | S_if (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_block t pp_block e
  | S_while (c, b) ->
      Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block b

and pp_block ppf b =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf b

let pp_decl ppf d =
  match d.v_typ with
  | T_int when d.v_init = 0 -> Format.fprintf ppf "int %s;" d.v_name
  | T_int -> Format.fprintf ppf "int %s = %d;" d.v_name d.v_init
  | T_array len -> Format.fprintf ppf "int %s[%d];" d.v_name len
  | T_void -> Format.fprintf ppf "void %s;" d.v_name

let pp_func ppf f =
  let ret = match f.f_ret with T_void -> "void" | _ -> "int" in
  Format.fprintf ppf "@[<v 2>%s %s(%s) {@," ret f.f_name
    (String.concat ", " (List.map (fun p -> "int " ^ p) f.f_params));
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_decl d) f.f_locals;
  Format.fprintf ppf "%a@]@,}" pp_block f.f_body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_decl d) p.globals;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_func ppf p.funcs;
  Format.fprintf ppf "@]@."

let to_string p = Format.asprintf "%a" pp_program p

let line_count p =
  String.split_on_char '\n' (to_string p)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
