type token =
  | INT_LIT of int
  | IDENT of string
  | KW_INT | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | NOT | ANDAND | OROR
  | EOF

exception Lex_error of { line : int; col : int; message : string }

let keyword = function
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let line_start = ref 0 in
  let fail pos message =
    raise (Lex_error { line = !line; col = pos - !line_start + 1; message })
  in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let rec go i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | '\n' ->
          incr line;
          line_start := i + 1;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then fail i "unterminated block comment"
            else if src.[j] = '\n' then begin
              incr line;
              line_start := j + 1;
              skip (j + 1)
            end
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else skip (j + 1)
          in
          go (skip (i + 2))
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE; go (i + 2)
      | '!' -> emit NOT; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; go (i + 2)
      | c when is_digit c ->
          let rec scan j acc =
            if j < n && is_digit src.[j] then
              scan (j + 1) ((acc * 10) + (Char.code src.[j] - Char.code '0'))
            else (j, acc)
          in
          let j, v = scan i 0 in
          emit (INT_LIT v);
          go j
      | c when is_ident_start c ->
          let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
          let j = scan i in
          let word = String.sub src i (j - i) in
          emit (match keyword word with Some kw -> kw | None -> IDENT word);
          go j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens

let pp_token ppf tok =
  Format.pp_print_string ppf
    (match tok with
    | INT_LIT n -> string_of_int n
    | IDENT s -> s
    | KW_INT -> "int" | KW_VOID -> "void" | KW_IF -> "if" | KW_ELSE -> "else"
    | KW_WHILE -> "while" | KW_RETURN -> "return"
    | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
    | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
    | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
    | SLASH -> "/" | PERCENT -> "%" | LT -> "<" | LE -> "<=" | GT -> ">"
    | GE -> ">=" | EQ -> "==" | NE -> "!=" | NOT -> "!" | ANDAND -> "&&"
    | OROR -> "||" | EOF -> "<eof>")
