(** Well-formedness checking and symbol tables for analyzed programs. The
    analyses assume checked programs; {!check} reports the first violation
    as an exception, and the {!env} it returns indexes every global (the
    variable numbering used in checkpointed side-effect sets). *)

exception Check_error of string

type env = {
  program : Ast.program;
  global_ids : (string * int) list;
      (** every global paired with a dense id, in declaration order *)
}

val check : Ast.program -> env
(** Validates: unique global/function/local/parameter names, no shadowing
    of globals by functions' locals being allowed (locals may shadow
    globals — the inner binding wins, as in C), variables defined before
    use, array indexing only on arrays, assignment targets of scalar type,
    calls to defined functions with matching arity, and the presence of a
    [main] function.
    @raise Check_error otherwise. *)

val global_id : env -> string -> int option
(** The dense id of a global, or [None] for locals/params. *)

val global_count : env -> int

val is_global_array : env -> string -> bool
