(** Abstract syntax of the simplified C the program analysis engine treats
    (paper Section 4: "our prototype implementation in Java of these
    analyses treats a simplified version of C").

    The language has [int] scalars, fixed-size [int] arrays, and functions
    over ints; statements are assignments, array stores, calls, [if],
    [while] and [return]. Every statement carries a unique id ([sid]) — the
    anchor to which the analysis engine attaches its checkpointable
    [Attributes] structure. *)

type typ = T_int | T_array of int  (** fixed length *) | T_void

type unop = U_neg | U_not

type binop =
  | B_add | B_sub | B_mul | B_div | B_mod
  | B_lt | B_le | B_gt | B_ge | B_eq | B_ne
  | B_and | B_or

type expr =
  | E_int of int
  | E_var of string
  | E_index of string * expr  (** [a[e]] *)
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_call of string * expr list

type stmt = { sid : int; node : stmt_node }

and stmt_node =
  | S_assign of string * expr
  | S_store of string * expr * expr  (** [a[i] = e] *)
  | S_expr of expr  (** expression for effect (a call) *)
  | S_if of expr * block * block
  | S_while of expr * block
  | S_return of expr option

and block = stmt list

type var_decl = { v_name : string; v_typ : typ; v_init : int }
(** [v_init] initializes scalars; arrays start zeroed. *)

type func = {
  f_name : string;
  f_params : string list;  (** parameters are ints *)
  f_locals : var_decl list;
  f_body : block;
  f_ret : typ;  (** [T_int] or [T_void] *)
}

type program = { globals : var_decl list; funcs : func list }

val stmt : stmt_node -> stmt
(** A statement with a placeholder id; run {!number} before analysis. *)

val number : program -> program
(** Assign fresh sids 0, 1, 2, ... in preorder (globals don't carry sids).
    Idempotent: renumbering a numbered program yields the same program. *)

val stmt_count : program -> int

val iter_stmts : program -> (func -> stmt -> unit) -> unit
(** Visit every statement (preorder, nested included) with its enclosing
    function. *)

val find_func : program -> string -> func option

val equal : program -> program -> bool
(** Structural equality after canonical renumbering — the round-trip
    criterion for parse ∘ print. *)

val pp_binop : Format.formatter -> binop -> unit

val pp_unop : Format.formatter -> unop -> unit
