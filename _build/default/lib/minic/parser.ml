open Ast

exception Parse_error of { line : int; message : string }

type state = { mutable toks : (Lexer.token * int) list }

let fail_at line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let peek st =
  match st.toks with
  | (tok, line) :: _ -> (tok, line)
  | [] -> (Lexer.EOF, 0)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let tok, line = peek st in
  advance st;
  (tok, line)

let expect st expected what =
  let tok, line = next st in
  if tok <> expected then
    fail_at line "expected %s, found %a" what Lexer.pp_token tok

let expect_ident st what =
  match next st with
  | Lexer.IDENT name, _ -> name
  | tok, line -> fail_at line "expected %s, found %a" what Lexer.pp_token tok

let expect_int st what =
  match next st with
  | Lexer.INT_LIT n, _ -> n
  | Lexer.MINUS, _ -> (
      match next st with
      | Lexer.INT_LIT n, _ -> -n
      | tok, line -> fail_at line "expected %s, found %a" what Lexer.pp_token tok)
  | tok, line -> fail_at line "expected %s, found %a" what Lexer.pp_token tok

(* Expressions: precedence climbing. *)
let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.OROR, _ ->
      advance st;
      E_binop (B_or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.ANDAND, _ ->
      advance st;
      E_binop (B_and, lhs, parse_and st)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.LT, _ -> Some B_lt
    | Lexer.LE, _ -> Some B_le
    | Lexer.GT, _ -> Some B_gt
    | Lexer.GE, _ -> Some B_ge
    | Lexer.EQ, _ -> Some B_eq
    | Lexer.NE, _ -> Some B_ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      E_binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        loop (E_binop (B_add, lhs, parse_mul st))
    | Lexer.MINUS, _ ->
        advance st;
        loop (E_binop (B_sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        loop (E_binop (B_mul, lhs, parse_unary st))
    | Lexer.SLASH, _ ->
        advance st;
        loop (E_binop (B_div, lhs, parse_unary st))
    | Lexer.PERCENT, _ ->
        advance st;
        loop (E_binop (B_mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS, _ -> (
      advance st;
      (* Normalize negated literals so that printing [-5] re-parses to the
         same tree. *)
      match parse_unary st with
      | E_int n -> E_int (-n)
      | e -> E_unop (U_neg, e))
  | Lexer.NOT, _ ->
      advance st;
      E_unop (U_not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | Lexer.INT_LIT n, _ -> E_int n
  | Lexer.LPAREN, _ ->
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT name, _ -> (
      match peek st with
      | Lexer.LPAREN, _ ->
          advance st;
          let args = parse_args st in
          E_call (name, args)
      | Lexer.LBRACKET, _ ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET "]";
          E_index (name, idx)
      | _ -> E_var name)
  | tok, line -> fail_at line "expected expression, found %a" Lexer.pp_token tok

and parse_args st =
  match peek st with
  | Lexer.RPAREN, _ ->
      advance st;
      []
  | _ ->
      let rec loop acc =
        let acc = parse_expr st :: acc in
        match next st with
        | Lexer.COMMA, _ -> loop acc
        | Lexer.RPAREN, _ -> List.rev acc
        | tok, line ->
            fail_at line "expected , or ) in arguments, found %a"
              Lexer.pp_token tok
      in
      loop []

(* Statements *)
let rec parse_stmt st =
  match peek st with
  | Lexer.KW_IF, _ ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expr st in
      expect st Lexer.RPAREN ")";
      let then_b = parse_block st in
      let else_b =
        match peek st with
        | Lexer.KW_ELSE, _ ->
            advance st;
            parse_block st
        | _ -> []
      in
      stmt (S_if (cond, then_b, else_b))
  | Lexer.KW_WHILE, _ ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expr st in
      expect st Lexer.RPAREN ")";
      stmt (S_while (cond, parse_block st))
  | Lexer.KW_RETURN, _ ->
      advance st;
      let e =
        match peek st with
        | Lexer.SEMI, _ -> None
        | _ -> Some (parse_expr st)
      in
      expect st Lexer.SEMI ";";
      stmt (S_return e)
  | Lexer.IDENT name, _ -> (
      advance st;
      match peek st with
      | Lexer.ASSIGN, _ ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.SEMI ";";
          stmt (S_assign (name, e))
      | Lexer.LBRACKET, _ ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET "]";
          expect st Lexer.ASSIGN "=";
          let e = parse_expr st in
          expect st Lexer.SEMI ";";
          stmt (S_store (name, idx, e))
      | Lexer.LPAREN, _ ->
          advance st;
          let args = parse_args st in
          expect st Lexer.SEMI ";";
          stmt (S_expr (E_call (name, args)))
      | tok, line ->
          fail_at line "expected statement after identifier, found %a"
            Lexer.pp_token tok)
  | tok, line -> fail_at line "expected statement, found %a" Lexer.pp_token tok

and parse_block st =
  expect st Lexer.LBRACE "{";
  let rec loop acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

let parse_var_decl st =
  (* "int" already consumed *)
  let name = expect_ident st "variable name" in
  let typ =
    match peek st with
    | Lexer.LBRACKET, _ ->
        advance st;
        let len = expect_int st "array length" in
        expect st Lexer.RBRACKET "]";
        T_array len
    | _ -> T_int
  in
  let init =
    match peek st with
    | Lexer.ASSIGN, _ ->
        advance st;
        expect_int st "initializer"
    | _ -> 0
  in
  expect st Lexer.SEMI ";";
  { v_name = name; v_typ = typ; v_init = init }

let parse_params st =
  expect st Lexer.LPAREN "(";
  match peek st with
  | Lexer.RPAREN, _ ->
      advance st;
      []
  | _ ->
      let rec loop acc =
        expect st Lexer.KW_INT "int (parameter type)";
        let acc = expect_ident st "parameter name" :: acc in
        match next st with
        | Lexer.COMMA, _ -> loop acc
        | Lexer.RPAREN, _ -> List.rev acc
        | tok, line ->
            fail_at line "expected , or ) in parameters, found %a"
              Lexer.pp_token tok
      in
      loop []

let parse_func_rest st ~ret ~name =
  let params = parse_params st in
  expect st Lexer.LBRACE "{";
  (* leading local declarations *)
  let rec locals acc =
    match peek st with
    | Lexer.KW_INT, _ ->
        advance st;
        locals (parse_var_decl st :: acc)
    | _ -> List.rev acc
  in
  let f_locals = locals [] in
  let rec body acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> body (parse_stmt st :: acc)
  in
  { f_name = name; f_params = params; f_locals; f_body = body []; f_ret = ret }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec toplevel globals funcs =
    match next st with
    | Lexer.EOF, _ -> { globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW_VOID, _ ->
        let name = expect_ident st "function name" in
        toplevel globals (parse_func_rest st ~ret:T_void ~name :: funcs)
    | Lexer.KW_INT, line -> (
        let name = expect_ident st "name" in
        match peek st with
        | Lexer.LPAREN, _ ->
            toplevel globals (parse_func_rest st ~ret:T_int ~name :: funcs)
        | Lexer.LBRACKET, _ | Lexer.ASSIGN, _ | Lexer.SEMI, _ ->
            (* global declaration: re-run the declaration parser *)
            let typ =
              match peek st with
              | Lexer.LBRACKET, _ ->
                  advance st;
                  let len = expect_int st "array length" in
                  expect st Lexer.RBRACKET "]";
                  T_array len
              | _ -> T_int
            in
            let init =
              match peek st with
              | Lexer.ASSIGN, _ ->
                  advance st;
                  expect_int st "initializer"
              | _ -> 0
            in
            expect st Lexer.SEMI ";";
            toplevel ({ v_name = name; v_typ = typ; v_init = init } :: globals) funcs
        | tok, _ ->
            fail_at line "expected global or function after name, found %a"
              Lexer.pp_token tok)
    | tok, line ->
        fail_at line "expected declaration, found %a" Lexer.pp_token tok
  in
  Ast.number (toplevel [] [])
