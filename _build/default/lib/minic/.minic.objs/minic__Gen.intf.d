lib/minic/gen.mli: Ast
