lib/minic/gen.ml: Array Ast List Printf
