lib/minic/lexer.ml: Char Format List Printf String
