lib/minic/interp.ml: Array Ast Check Format Hashtbl List
