type typ = T_int | T_array of int | T_void

type unop = U_neg | U_not

type binop =
  | B_add | B_sub | B_mul | B_div | B_mod
  | B_lt | B_le | B_gt | B_ge | B_eq | B_ne
  | B_and | B_or

type expr =
  | E_int of int
  | E_var of string
  | E_index of string * expr
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_call of string * expr list

type stmt = { sid : int; node : stmt_node }

and stmt_node =
  | S_assign of string * expr
  | S_store of string * expr * expr
  | S_expr of expr
  | S_if of expr * block * block
  | S_while of expr * block
  | S_return of expr option

and block = stmt list

type var_decl = { v_name : string; v_typ : typ; v_init : int }

type func = {
  f_name : string;
  f_params : string list;
  f_locals : var_decl list;
  f_body : block;
  f_ret : typ;
}

type program = { globals : var_decl list; funcs : func list }

let stmt node = { sid = -1; node }

let number p =
  let counter = ref 0 in
  let rec renumber_stmt s =
    let sid = !counter in
    incr counter;
    let node =
      match s.node with
      | (S_assign _ | S_store _ | S_expr _ | S_return _) as n -> n
      | S_if (c, t, f) -> S_if (c, renumber_block t, renumber_block f)
      | S_while (c, b) -> S_while (c, renumber_block b)
    in
    { sid; node }
  and renumber_block b = List.map renumber_stmt b in
  { p with
    funcs = List.map (fun f -> { f with f_body = renumber_block f.f_body }) p.funcs
  }

let iter_stmts p visit =
  let rec stmt f s =
    visit f s;
    match s.node with
    | S_assign _ | S_store _ | S_expr _ | S_return _ -> ()
    | S_if (_, t, e) ->
        List.iter (stmt f) t;
        List.iter (stmt f) e
    | S_while (_, b) -> List.iter (stmt f) b
  in
  List.iter (fun f -> List.iter (stmt f) f.f_body) p.funcs

let stmt_count p =
  let n = ref 0 in
  iter_stmts p (fun _ _ -> incr n);
  !n

let find_func p name = List.find_opt (fun f -> f.f_name = name) p.funcs

let equal a b = number a = number b

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with
    | B_add -> "+" | B_sub -> "-" | B_mul -> "*" | B_div -> "/"
    | B_mod -> "%" | B_lt -> "<" | B_le -> "<=" | B_gt -> ">"
    | B_ge -> ">=" | B_eq -> "==" | B_ne -> "!=" | B_and -> "&&"
    | B_or -> "||")

let pp_unop ppf op =
  Format.pp_print_string ppf (match op with U_neg -> "-" | U_not -> "!")
