(** Hand-written lexer for the simplified C. *)

type token =
  | INT_LIT of int
  | IDENT of string
  | KW_INT | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN  (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | NOT | ANDAND | OROR
  | EOF

exception Lex_error of { line : int; col : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with line numbers, ending in [EOF]. Supports [//] line
    comments and [/* ... */] block comments.
    @raise Lex_error on an unexpected character or unterminated comment. *)

val pp_token : Format.formatter -> token -> unit
