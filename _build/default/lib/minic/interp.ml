open Ast

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value = V_int of int ref | V_array of int array

type outcome = {
  return_value : int option;
  steps : int;
  globals : (string * int) list;
}

exception Return of int option

let make_store decls =
  let store = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let v =
        match d.v_typ with
        | T_int -> V_int (ref d.v_init)
        | T_array len ->
            if len <= 0 then fail "array %s has non-positive length" d.v_name;
            V_array (Array.make len 0)
        | T_void -> fail "void variable %s" d.v_name
      in
      Hashtbl.replace store d.v_name v)
    decls;
  store

let exec ?(max_steps = 10_000_000) (p : program) fname args =
  let env = Check.check p in
  ignore env;
  let globals = make_store p.globals in
  let steps = ref 0 in
  let budget () =
    incr steps;
    if !steps > max_steps then fail "step budget exhausted (%d)" max_steps
  in
  let rec call fname args =
    let f =
      match find_func p fname with
      | Some f -> f
      | None -> fail "undefined function %s" fname
    in
    if List.length args <> List.length f.f_params then
      fail "%s: arity mismatch" fname;
    let locals = make_store f.f_locals in
    List.iter2
      (fun name v -> Hashtbl.replace locals name (V_int (ref v)))
      f.f_params args;
    let lookup x =
      match Hashtbl.find_opt locals x with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt globals x with
          | Some v -> v
          | None -> fail "%s: unbound variable %s" fname x)
    in
    let as_scalar x =
      match lookup x with
      | V_int r -> r
      | V_array _ -> fail "%s: array %s used as scalar" fname x
    in
    let as_array x =
      match lookup x with
      | V_array a -> a
      | V_int _ -> fail "%s: scalar %s used as array" fname x
    in
    let rec eval = function
      | E_int n -> n
      | E_var x -> !(as_scalar x)
      | E_index (a, i) ->
          let arr = as_array a in
          let i = eval i in
          if i < 0 || i >= Array.length arr then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i
              (Array.length arr);
          arr.(i)
      | E_unop (U_neg, e) -> -eval e
      | E_unop (U_not, e) -> if eval e = 0 then 1 else 0
      | E_binop (op, l, r) -> (
          match op with
          | B_and -> if eval l = 0 then 0 else if eval r <> 0 then 1 else 0
          | B_or -> if eval l <> 0 then 1 else if eval r <> 0 then 1 else 0
          | _ ->
              let l = eval l and r = eval r in
              let nz b = if b then 1 else 0 in
              (match op with
              | B_add -> l + r
              | B_sub -> l - r
              | B_mul -> l * r
              | B_div -> if r = 0 then fail "%s: division by zero" fname else l / r
              | B_mod -> if r = 0 then fail "%s: modulo by zero" fname else l mod r
              | B_lt -> nz (l < r)
              | B_le -> nz (l <= r)
              | B_gt -> nz (l > r)
              | B_ge -> nz (l >= r)
              | B_eq -> nz (l = r)
              | B_ne -> nz (l <> r)
              | B_and | B_or -> assert false))
      | E_call (g, args) -> (
          let args = List.map eval args in
          match call g args with
          | Some v -> v
          | None -> fail "%s: void call to %s used as value" fname g)
    and stmt s =
      budget ();
      match s.node with
      | S_assign (x, e) -> as_scalar x := eval e
      | S_store (a, i, e) ->
          let arr = as_array a in
          let i = eval i in
          if i < 0 || i >= Array.length arr then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i
              (Array.length arr);
          let v = eval e in
          arr.(i) <- v
      | S_expr e -> (
          match e with
          | E_call (g, args) -> ignore (call g (List.map eval args))
          | _ -> ignore (eval e))
      | S_if (c, t, e) -> if eval c <> 0 then List.iter stmt t else List.iter stmt e
      | S_while (c, b) ->
          (* Charge the budget per loop iteration, not just once for the
             while statement itself — an empty loop body must still hit
             the step limit. *)
          while eval c <> 0 do
            budget ();
            List.iter stmt b
          done
      | S_return None -> raise (Return None)
      | S_return (Some e) -> raise (Return (Some (eval e)))
    in
    match List.iter stmt f.f_body with
    | () -> None
    | exception Return v -> v
  in
  let return_value = call fname args in
  let final_globals =
    List.filter_map
      (fun d ->
        match Hashtbl.find_opt globals d.v_name with
        | Some (V_int r) -> Some (d.v_name, !r)
        | _ -> None)
      p.globals
  in
  { return_value; steps = !steps; globals = final_globals }

let run ?max_steps p =
  exec ?max_steps p "main" []

let eval_function ?max_steps p fname args =
  (exec ?max_steps p fname args).return_value
