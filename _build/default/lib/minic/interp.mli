(** Reference interpreter for the simplified C. Used by tests (the
    generated workloads actually run) and by the examples to show that the
    analyzed program is a real program, not a prop. *)

exception Runtime_error of string
(** Division by zero, out-of-bounds access, missing return value, or
    exceeding the step budget. *)

type outcome = {
  return_value : int option;  (** [main]'s return, if it returned a value *)
  steps : int;  (** statements executed *)
  globals : (string * int) list;  (** final scalar global values *)
}

val run : ?max_steps:int -> Ast.program -> outcome
(** Execute [main] (no arguments). [max_steps] defaults to 10,000,000.
    @raise Runtime_error as documented; @raise Check_error via the implied
    {!Check.check}. *)

val eval_function :
  ?max_steps:int -> Ast.program -> string -> int list -> int option
(** Call one function with scalar arguments on fresh global state. *)
