(** Recursive-descent parser for the simplified C.

    Grammar sketch (statements inside [if]/[while] require braces, which is
    also what {!Pp} prints, making parse ∘ print the identity):
    {v
    program  ::= (global | func)*
    global   ::= "int" ident ("[" num "]")? ("=" num)? ";"
    func     ::= ("int" | "void") ident "(" params? ")" "{" local* stmt* "}"
    local    ::= "int" ident ("[" num "]")? ("=" num)? ";"
    stmt     ::= ident "=" expr ";" | ident "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "return" expr? ";" | expr ";"
    v} *)

exception Parse_error of { line : int; message : string }

val parse : string -> Ast.program
(** Parse and {!Ast.number} a program.
    @raise Parse_error and @raise Lexer.Lex_error on bad input. *)
