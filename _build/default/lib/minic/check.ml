open Ast

exception Check_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Check_error s)) fmt

type env = { program : Ast.program; global_ids : (string * int) list }

let dup_check what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then fail "duplicate %s %S" what n
      else Hashtbl.add seen n ())
    names

let check p =
  dup_check "global" (List.map (fun g -> g.v_name) p.globals);
  dup_check "function" (List.map (fun f -> f.f_name) p.funcs);
  let globals = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace globals g.v_name g.v_typ) p.globals;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace funcs f.f_name (List.length f.f_params, f.f_ret))
    p.funcs;
  let check_func f =
    dup_check
      (Printf.sprintf "local/param in %s" f.f_name)
      (f.f_params @ List.map (fun l -> l.v_name) f.f_locals);
    let locals = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace locals x T_int) f.f_params;
    List.iter (fun l -> Hashtbl.replace locals l.v_name l.v_typ) f.f_locals;
    let typ_of x =
      match Hashtbl.find_opt locals x with
      | Some t -> t
      | None -> (
          match Hashtbl.find_opt globals x with
          | Some t -> t
          | None -> fail "in %s: undefined variable %S" f.f_name x)
    in
    let rec expr = function
      | E_int _ -> ()
      | E_var x -> (
          match typ_of x with
          | T_int -> ()
          | T_array _ -> fail "in %s: array %S used as scalar" f.f_name x
          | T_void -> fail "in %s: void variable %S" f.f_name x)
      | E_index (a, i) -> (
          expr i;
          match typ_of a with
          | T_array _ -> ()
          | T_int | T_void -> fail "in %s: indexing non-array %S" f.f_name a)
      | E_unop (_, e) -> expr e
      | E_binop (_, l, r) ->
          expr l;
          expr r
      | E_call (g, args) -> (
          List.iter expr args;
          match Hashtbl.find_opt funcs g with
          | None -> fail "in %s: call to undefined function %S" f.f_name g
          | Some (arity, _ret) ->
              if List.length args <> arity then
                fail "in %s: %S expects %d arguments, got %d" f.f_name g arity
                  (List.length args))
    in
    let rec stmt s =
      match s.node with
      | S_assign (x, e) -> (
          expr e;
          match typ_of x with
          | T_int -> ()
          | T_array _ | T_void ->
              fail "in %s: assignment to non-scalar %S" f.f_name x)
      | S_store (a, i, e) -> (
          expr i;
          expr e;
          match typ_of a with
          | T_array _ -> ()
          | T_int | T_void -> fail "in %s: store to non-array %S" f.f_name a)
      | S_expr e -> expr e
      | S_if (c, t, el) ->
          expr c;
          List.iter stmt t;
          List.iter stmt el
      | S_while (c, b) ->
          expr c;
          List.iter stmt b
      | S_return None -> ()
      | S_return (Some e) -> expr e
    in
    List.iter stmt f.f_body
  in
  List.iter check_func p.funcs;
  if find_func p "main" = None then fail "no main function";
  { program = p;
    global_ids = List.mapi (fun i g -> (g.v_name, i)) p.globals }

let global_id env x = List.assoc_opt x env.global_ids

let global_count env = List.length env.global_ids

let is_global_array env x =
  List.exists
    (fun g -> g.v_name = x && match g.v_typ with T_array _ -> true | _ -> false)
    env.program.globals
