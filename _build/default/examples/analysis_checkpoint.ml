(* The paper's realistic application (Section 4): run the program analysis
   engine over a generated ~750-line image-manipulation program, taking a
   checkpoint after every analysis iteration, and compare the three
   checkpointing methods. Also prints the residual BTA-phase checkpointing
   code, the analog of the paper's Figure 6.

   Run with: dune exec examples/analysis_checkpoint.exe *)

open Ickpt_analysis

let describe (r : Engine.report) =
  Format.printf "  mode %-12s base checkpoint %6d bytes@."
    (Format.asprintf "%a" Engine.pp_mode r.Engine.mode)
    r.Engine.base_bytes;
  List.iter
    (fun (p : Engine.phase_report) ->
      let bytes =
        List.map (fun (s : Engine.iteration_stat) -> s.Engine.bytes) p.Engine.stats
      in
      Format.printf "    %-4s %d iterations, per-iteration bytes: %s@."
        p.Engine.phase p.Engine.iterations
        (String.concat ", " (List.map string_of_int bytes)))
    r.Engine.phases

let () =
  let program = Minic.Gen.image_program () in
  Format.printf "analyzing a %d-line mini-C program (%d statements)@.@."
    (Minic.Pp.line_count program)
    (Minic.Ast.stmt_count program);

  (* The analyzed program is a real program — run it. *)
  let outcome = Minic.Interp.run program in
  Format.printf "the analyzed program itself runs: main() = %s (%d steps)@.@."
    (match outcome.Minic.Interp.return_value with
    | Some v -> string_of_int v
    | None -> "void")
    outcome.Minic.Interp.steps;

  Format.printf "paper configuration: BTA runs 9 iterations, ETA 3@.@.";
  let modes = Engine.[ Full; Incremental; Specialized ] in
  let reports =
    List.map
      (fun mode ->
        Engine.analyze ~mode ~bta_min:9 ~eta_min:3 ~guard:(mode = Engine.Specialized)
          program)
      modes
  in
  List.iter describe reports;

  (* The analyses are deterministic: every mode ends in the same state. *)
  (match reports with
  | [ a; b; c ] ->
      let ra = Engine.recover_annotations a
      and rb = Engine.recover_annotations b
      and rc = Engine.recover_annotations c in
      Format.printf
        "@.all three modes recover identical analysis results: %b@."
        (ra = rb && rb = rc)
  | _ -> assert false);

  (* Show the specialized checkpointing code for the BTA phase. *)
  let attrs = Attrs.create ~n_stmts:1 in
  let bta_shape = Attrs.bta_shape attrs in
  Format.printf
    "@.two-level view of the generic checkpoint method for the BTA phase@.\
     (what the specializer decides, Tempo-style):@.%a@."
    Jspec.Bta.pp_two_level
    (Jspec.Bta.annotate_method bta_shape Jspec.Cklang.M_checkpoint);
  let plan = Jspec.Pe.specialize bta_shape in
  Format.printf
    "@.BTA-phase specialized checkpointing (cf. paper Figure 6):@.%s@."
    (Jspec.Java_pp.to_string plan);

  (* And the declaration inference (the paper's future work): learn the
     BTA modification pattern from a trace instead of writing it down. *)
  let program2 = Minic.Gen.image_program ~n_filters:3 () in
  let env = Minic.Check.check program2 in
  let attrs2 = Attrs.create ~n_stmts:(Minic.Ast.stmt_count program2) in
  ignore (Sea.run env attrs2);
  let _, inferred =
    Decls.infer attrs2 (fun () ->
        Bta_phase.run ~division:Minic.Gen.static_globals env attrs2)
  in
  Format.printf
    "inferred BTA shape tracks %d node(s), hand-written tracks %d — the \
     inference recovers the declaration automatically@."
    (Jspec.Sclass.tracked_count inferred)
    (Jspec.Sclass.tracked_count (Attrs.bta_shape attrs2))
