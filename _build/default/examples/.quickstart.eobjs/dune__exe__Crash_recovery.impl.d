examples/crash_recovery.ml: Array Attrs Bta_phase Chain Filename Format Ickpt_analysis Ickpt_core Ickpt_runtime List Minic Sea Storage String Sys
