examples/pagerank.mli:
