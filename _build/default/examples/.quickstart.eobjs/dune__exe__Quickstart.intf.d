examples/quickstart.mli:
