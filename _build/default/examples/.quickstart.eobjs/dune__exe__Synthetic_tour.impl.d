examples/synthetic_tour.ml: Backend Clock Format Ickpt_backend Ickpt_core Ickpt_harness Ickpt_stream Ickpt_synth Jspec List Synth Table
