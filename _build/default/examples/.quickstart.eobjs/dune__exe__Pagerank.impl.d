examples/pagerank.ml: Array Barrier Filename Format Hashtbl Heap Ickpt_core Ickpt_harness Ickpt_runtime Jspec List Manager Model Policy Random Schema Segment Sys
