examples/analysis_checkpoint.mli:
