examples/analysis_checkpoint.ml: Attrs Bta_phase Decls Engine Format Ickpt_analysis Jspec List Minic Sea String
