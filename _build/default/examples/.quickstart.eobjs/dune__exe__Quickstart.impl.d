examples/quickstart.ml: Barrier Chain Checkpointer Compile Deep_eq Filename Format Heap Ickpt_core Ickpt_runtime Ickpt_stream Java_pp Jspec Pe Schema Sclass Segment Storage Sys
