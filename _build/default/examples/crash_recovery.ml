(* Crash recovery end-to-end: run the analysis engine with per-iteration
   incremental checkpoints streamed to a log file, kill it mid-run (we
   simulate the crash by truncating the log mid-segment), then restart:
   load the intact prefix, recover the heap, and verify the recovered
   annotations equal the state at the surviving checkpoint.

   Run with: dune exec examples/crash_recovery.exe *)

open Ickpt_core
open Ickpt_analysis

let log_path = Filename.concat (Filename.get_temp_dir_name ()) "analysis.ckpt"

let () =
  if Sys.file_exists log_path then Sys.remove log_path;
  let program = Minic.Gen.image_program ~n_filters:6 () in
  let env = Minic.Check.check program in

  (* Phase 1: the "first life". Run SEA + BTA, appending every checkpoint
     to stable storage as it is taken. *)
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count program) in
  let chain = Chain.create (Attrs.schema attrs) in
  let persist seg = Storage.append ~path:log_path seg in
  let base = Chain.take_full chain (Attrs.roots attrs) in
  persist base.Chain.segment;
  let checkpoint _i =
    let taken = Chain.take_incremental chain (Attrs.roots attrs) in
    persist taken.Chain.segment
  in
  ignore (Sea.run ~on_iteration:checkpoint env attrs);
  ignore
    (Bta_phase.run ~on_iteration:checkpoint ~min_iterations:5
       ~division:Minic.Gen.static_globals env attrs);
  let segments_written = Chain.length chain in
  Format.printf "first life: wrote %d checkpoints (%d bytes of log)@."
    segments_written
    (let ic = open_in_bin log_path in
     let n = in_channel_length ic in
     close_in ic;
     n);

  (* The crash: the process dies while appending the final checkpoint.
     Simulate by chopping the last 10 bytes off the log. *)
  let data =
    let ic = open_in_bin log_path in
    let d = really_input_string ic (in_channel_length ic) in
    close_in ic;
    d
  in
  let oc = open_out_bin log_path in
  output_string oc (String.sub data 0 (String.length data - 10));
  close_out oc;
  Format.printf "simulated crash: tore the tail of the log@.";

  (* Phase 2: the "second life". Load the log; the torn segment is
     detected and dropped, everything before it recovers. *)
  let chain', torn = Storage.load_chain (Attrs.schema attrs) ~path:log_path in
  Format.printf "restart: loaded %d intact checkpoints (torn tail: %b)@."
    (Chain.length chain') torn;
  assert torn;
  assert (Chain.length chain' = segments_written - 1);
  (match Chain.recover chain' with
  | Error e -> failwith e
  | Ok (heap', roots') ->
      Format.printf "recovered %d objects, %d attribute roots@."
        (Ickpt_runtime.Heap.count heap')
        (List.length roots');
      (* The recovered state is exactly the state at the second-to-last
         checkpoint: the BT annotation of statement 0 is present. *)
      let attr0 = List.hd roots' in
      let bt =
        match attr0.Ickpt_runtime.Model.children.(1) with
        | Some btentry -> (
            match btentry.Ickpt_runtime.Model.children.(0) with
            | Some bt -> bt.Ickpt_runtime.Model.ints.(0)
            | None -> assert false)
        | None -> assert false
      in
      Format.printf "statement 0 binding time after recovery: %s@."
        (if bt = Attrs.bt_static then "static"
         else if bt = Attrs.bt_dynamic then "dynamic"
         else "unknown"));

  (* Housekeeping: compact the chain so the next life starts from a single
     full checkpoint. *)
  Chain.compact chain';
  Storage.write_chain ~path:log_path chain';
  Format.printf "compacted log to %d segment(s)@." (Chain.length chain');
  Sys.remove log_path
