(* A tour of the paper's synthetic application (Section 5) at reduced
   scale: build compound structures, drive modification rounds under
   different constraints, and compare full / incremental / specialized
   checkpointing on each execution backend.

   Run with: dune exec examples/synthetic_tour.exe *)

open Ickpt_synth
open Ickpt_backend
open Ickpt_harness

let time_checkpoint roots runner =
  let d = Ickpt_stream.Out_stream.create () in
  let (), s = Clock.time (fun () -> List.iter (fun r -> runner d r) roots) in
  (Ickpt_stream.Out_stream.size d, s)

let () =
  let config =
    { Synth.default_config with
      Synth.n_structures = 2_000;
      list_len = 5;
      n_int_fields = 10;
      pct_modified = 25;
      modified_lists = 1;
      last_only = true }
  in
  Format.printf "workload: %a@.@." Synth.pp_config config;

  let t = Synth.build config in
  let roots = Synth.roots t in
  Synth.base_checkpoint t;
  let dirtied = Synth.mutate_round t in
  Format.printf "mutation round dirtied %d of %d elements@.@." dirtied
    (Synth.element_count t);

  (* Full vs incremental (cf. paper Fig. 7). *)
  let full_bytes, full_s =
    time_checkpoint roots (fun d r -> Ickpt_core.Checkpointer.full d r)
  in
  (* Rebuild to restore flags (full reset them), replay the same round. *)
  let t = Synth.build config in
  let roots = Synth.roots t in
  Synth.base_checkpoint t;
  ignore (Synth.mutate_round t);
  let incr_bytes, incr_s =
    time_checkpoint roots (fun d r -> Ickpt_core.Checkpointer.incremental d r)
  in
  Format.printf "full checkpoint:        %8s in %s@."
    (Table.cell_bytes full_bytes) (Table.cell_seconds full_s);
  Format.printf "incremental checkpoint: %8s in %s (speedup %s)@.@."
    (Table.cell_bytes incr_bytes) (Table.cell_seconds incr_s)
    (Table.cell_speedup (full_s /. incr_s));

  (* The three levels of specialization (cf. paper Figs. 8-10). The
     baseline, as in the paper, is the *generic* incremental algorithm in
     the same execution environment (the compiled/"Harissa" backend). *)
  let t = Synth.build config in
  let roots = Synth.roots t in
  Synth.base_checkpoint t;
  ignore (Synth.mutate_round t);
  let _, generic_s =
    time_checkpoint roots (fun d r -> Backend.native.Backend.run_generic d r)
  in
  Format.printf "unspecialized incremental (native backend): %s@.@."
    (Table.cell_seconds generic_s);
  let levels =
    [ ("structure only (Fig 8)", Synth.shape_structure t);
      ("+ modifiable lists (Fig 9)", Synth.shape_modified_lists t);
      ("+ last-only positions (Fig 10)", Synth.shape_last_only t) ]
  in
  List.iter
    (fun (label, shape) ->
      let plan = Jspec.Pe.specialize shape in
      let runner = Jspec.Compile.residual plan in
      let t = Synth.build config in
      let roots = Synth.roots t in
      Synth.base_checkpoint t;
      ignore (Synth.mutate_round t);
      let bytes, s = time_checkpoint roots runner in
      assert (bytes = incr_bytes);
      Format.printf
        "%-32s residual %4d stmts, %8s in %9s (speedup over generic %s)@."
        label
        (Jspec.Cklang.stmt_count plan.Jspec.Pe.body)
        (Table.cell_bytes bytes) (Table.cell_seconds s)
        (Table.cell_speedup (generic_s /. s)))
    levels;

  (* Execution environments (cf. paper Table 2 / Fig 11). *)
  Format.printf "@.generic incremental checkpointing across backends:@.";
  List.iter
    (fun b ->
      let t = Synth.build config in
      let roots = Synth.roots t in
      Synth.base_checkpoint t;
      ignore (Synth.mutate_round t);
      let _, s = time_checkpoint roots (fun d r -> b.Backend.run_generic d r) in
      Format.printf "  %-13s (%s): %s@." b.Backend.name b.Backend.description
        (Table.cell_seconds s))
    Backend.all
