(* A second domain for the checkpointing API: an iterative fixed-point
   graph computation (PageRank in integer arithmetic) that checkpoints
   after every iteration through the Manager.

   Two things worth noticing:

   - The link topology is cyclic, which the checkpointable object model
     does not allow for child pointers (the paper's no-cycles assumption).
     The standard move is the one checkpoint records themselves use:
     represent references as scalar ids. Pages are flat checkpointable
     objects; topology lives in int fields; the object graph seen by the
     checkpointer is a forest.

   - Scores are written through change-detecting barriers, so as the
     fixed point converges, fewer pages are dirty and the incremental
     checkpoints shrink — the same dynamics as the paper's analysis
     engine.

   Run with: dune exec examples/pagerank.exe *)

open Ickpt_runtime
open Ickpt_core

let n_pages = 2_000

let max_links = 4

let damping_milli = 850 (* 0.85 in fixed-point millis *)

(* Page layout: ints.(0) = score (millis), ints.(1) = out-degree,
   ints.(2..2+max_links-1) = target page ids. *)
let slot_score = 0

let slot_degree = 1

let slot_link k = 2 + k

let () =
  let schema = Schema.create () in
  let page_klass =
    Schema.declare schema ~name:"Page" ~ints:(2 + max_links) ~children:0 ()
  in
  let heap = Heap.create schema in
  let rng = Random.State.make [| 20260705 |] in
  let pages =
    Array.init n_pages (fun _ -> Heap.alloc heap page_klass)
  in
  Array.iteri
    (fun i p ->
      let degree = 1 + Random.State.int rng max_links in
      Barrier.set_int p slot_score 1000;
      Barrier.set_int p slot_degree degree;
      for k = 0 to degree - 1 do
        (* Mix of local and long-range links, self-links excluded. *)
        let target =
          if Random.State.bool rng then (i + 1 + Random.State.int rng 10) mod n_pages
          else Random.State.int rng n_pages
        in
        Barrier.set_int p (slot_link k)
          (pages.(if target = i then (i + 1) mod n_pages else target)
             .Model.info.Model.id)
      done)
    pages;
  let by_id = Hashtbl.create n_pages in
  Array.iter (fun p -> Hashtbl.replace by_id p.Model.info.Model.id p) pages;

  let path = Filename.concat (Filename.get_temp_dir_name ()) "pagerank.ckpt" in
  if Sys.file_exists path then Sys.remove path;
  let manager =
    Manager.create ~policy:(Policy.Full_every 8) ~compact_above:32 schema ~path
  in
  let roots = Array.to_list pages in

  (* The specialized checkpoint routine for a Page: a tracked leaf — no
     dispatch, one test, a fixed run of writes. One shared plan serves all
     pages (Spec_cache would share it across shapes too). *)
  let plan = Jspec.Pe.specialize (Jspec.Sclass.leaf page_klass) in
  let runner = Jspec.Compile.residual plan in

  (* One synchronous sweep: every page's new score from its in-neighbours.
     Incoming contributions are accumulated in one pass over out-links. *)
  let incoming = Array.make n_pages 0 in
  let index_of = Hashtbl.create n_pages in
  Array.iteri (fun i p -> Hashtbl.replace index_of p.Model.info.Model.id i) pages;
  let iterate () =
    Array.fill incoming 0 n_pages 0;
    Array.iter
      (fun p ->
        let degree = Barrier.get_int p slot_degree in
        let share = Barrier.get_int p slot_score / degree in
        for k = 0 to degree - 1 do
          let target = Hashtbl.find index_of (Barrier.get_int p (slot_link k)) in
          incoming.(target) <- incoming.(target) + share
        done)
      pages;
    let changed = ref 0 in
    Array.iteri
      (fun i p ->
        let fresh =
          1000 - damping_milli + (damping_milli * incoming.(i) / 1000)
        in
        if Barrier.set_int_if_changed p slot_score fresh then incr changed)
      pages;
    !changed
  in

  Format.printf "PageRank over %d pages, checkpoint per iteration:@." n_pages;
  let iteration = ref 0 in
  let continue = ref true in
  while !continue && !iteration < 60 do
    incr iteration;
    let changed = iterate () in
    let seg =
      Manager.checkpoint_with manager roots ~body:(fun d roots ->
          List.iter (fun r -> runner d r) roots)
    in
    if !iteration <= 6 || changed = 0 then
      Format.printf "  iter %2d: %4d pages changed, checkpoint %s (%s)@."
        !iteration changed
        (Ickpt_harness.Table.cell_bytes (Segment.body_size seg))
        (Format.asprintf "%a" Segment.pp_kind seg.Segment.kind);
    if changed = 0 then continue := false
  done;
  Manager.close manager;

  (* Recover into a fresh heap and verify the fixed point survived. *)
  (match Manager.recover_latest schema ~path with
  | Error e -> failwith e
  | Ok (heap', roots') ->
      Format.printf "recovered %d pages from %s@." (Heap.count heap') path;
      let sum =
        List.fold_left (fun acc p -> acc + p.Model.ints.(slot_score)) 0 roots'
      in
      let live_sum =
        Array.fold_left (fun acc p -> acc + p.Model.ints.(slot_score)) 0 pages
      in
      Format.printf "total mass: live %d vs recovered %d (equal: %b)@."
        live_sum sum (sum = live_sum);
      (* Top page by rank, from the recovered state. *)
      let best =
        List.fold_left
          (fun acc p ->
            if p.Model.ints.(slot_score) > acc.Model.ints.(slot_score) then p
            else acc)
          (List.hd roots') roots'
      in
      Format.printf "highest-ranked page: #%d with score %d/1000@."
        best.Model.info.Model.id
        best.Model.ints.(slot_score));
  ignore by_id;
  Sys.remove path
