(* Quickstart: declare checkpointable classes, build an object graph, take
   full and incremental checkpoints, mutate, and recover.

   Run with: dune exec examples/quickstart.exe *)

open Ickpt_runtime
open Ickpt_core

let () =
  (* 1. Declare the class schema. A "Point" has two scalar fields; a
     "Segment" holds two Points; a "Path" chains Segments. *)
  let schema = Schema.create () in
  let point = Schema.declare schema ~name:"Point" ~ints:2 ~children:0 () in
  let segment = Schema.declare schema ~name:"Segment" ~ints:0 ~children:2 () in
  let path = Schema.declare schema ~name:"Path" ~ints:1 ~children:2 () in

  (* 2. Build a small object graph on a heap. *)
  let heap = Heap.create schema in
  let mk_point x y =
    let p = Heap.alloc heap point in
    Barrier.set_int p 0 x;
    Barrier.set_int p 1 y;
    p
  in
  let mk_segment a b =
    let s = Heap.alloc heap segment in
    Barrier.set_child s 0 (Some a);
    Barrier.set_child s 1 (Some b);
    s
  in
  let p1 = mk_point 0 0 and p2 = mk_point 3 4 and p3 = mk_point 6 0 in
  let root = Heap.alloc heap path in
  Barrier.set_int root 0 42;
  Barrier.set_child root 0 (Some (mk_segment p1 p2));
  Barrier.set_child root 1 (Some (mk_segment p2 p3));
  Format.printf "built %d objects@." (Heap.count heap);

  (* 3. Take the base (full) checkpoint — everything is fresh. *)
  let chain = Chain.create schema in
  let base = Chain.take_full chain [ root ] in
  Format.printf "full checkpoint: %d objects, %d bytes@."
    base.Chain.stats.Checkpointer.recorded
    (Segment.body_size base.Chain.segment);

  (* 4. Mutate one point; the write barrier marks it modified. *)
  Barrier.set_int p2 1 99;
  Format.printf "after mutation, %d object(s) dirty@." (Heap.modified_count heap);

  (* 5. The incremental checkpoint records only the modified object. *)
  let incr = Chain.take_incremental chain [ root ] in
  Format.printf "incremental checkpoint: %d object(s), %d bytes@."
    incr.Chain.stats.Checkpointer.recorded
    (Segment.body_size incr.Chain.segment);

  (* 6. Persist the chain and recover it into a fresh heap. *)
  let file = Filename.temp_file "quickstart" ".ckpt" in
  Storage.write_chain ~path:file chain;
  let chain', torn = Storage.load_chain schema ~path:file in
  assert (not torn);
  (match Chain.recover chain' with
  | Ok (heap', [ root' ]) ->
      Format.printf "recovered %d objects from %s@." (Heap.count heap') file;
      Format.printf "recovered graph equals live graph: %b@."
        (Deep_eq.equal root root')
  | Ok _ -> assert false
  | Error e -> failwith e);
  Sys.remove file;

  (* 7. Specialize checkpointing for the Path structure: every class is
     statically known, so dispatch disappears; and if we promise the
     Points of the first segment never change after setup, their tests
     and traversal disappear too. *)
  let open Jspec in
  let point_shape status = Sclass.leaf ~status point in
  let seg_shape status =
    Sclass.shape ~status:Sclass.Clean segment
      [| Sclass.Exact (point_shape status); Sclass.Exact (point_shape status) |]
  in
  let shape =
    Sclass.shape path
      [| Sclass.Exact (seg_shape Sclass.Clean);
         Sclass.Exact (seg_shape Sclass.Tracked) |]
  in
  let plan = Pe.specialize shape in
  Format.printf "@.specialized checkpoint routine (Java-style, cf. paper Fig. 5):@.%s@."
    (Java_pp.to_string plan);
  let runner = Compile.residual plan in
  Barrier.set_int p3 0 7;
  let d = Ickpt_stream.Out_stream.create () in
  runner d root;
  Format.printf "specialized incremental checkpoint wrote %d bytes@."
    (Ickpt_stream.Out_stream.size d)
