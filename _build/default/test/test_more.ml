(* Additional hardening tests: wire-format fuzzing, structural assertions
   on phase-specialized residual code (the essence of paper Figure 6),
   interpreter instrumentation, and harness utilities. *)

open Ickpt_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- segment fuzzing ------------------------------------------------------ *)

(* Any single corrupted byte in an encoded segment must be detected: either
   the decoder raises Corrupt, or — never — silently yields a segment that
   differs from the original. (Decoding the same bytes must yield the same
   segment; a flipped byte that still decodes equal is impossible because
   the CRC covers every byte.) *)
let prop_segment_bitflip_detected =
  QCheck2.Test.make ~name:"segment decode detects any byte corruption"
    ~count:300
    QCheck2.Gen.(
      triple
        (string_size ~gen:printable (int_range 0 60))
        (int_range 0 10_000) (int_range 0 7))
    (fun (body, pos_seed, bit) ->
      let seg =
        { Segment.kind = Segment.Incremental; seq = 3; roots = [ 1; 2 ]; body }
      in
      let encoded = Segment.encode seg in
      let pos = pos_seed mod String.length encoded in
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let corrupted = Bytes.to_string b in
      if corrupted = encoded then true (* flip was a no-op: impossible, but safe *)
      else
        match Segment.decode corrupted ~pos:0 with
        | _ -> false (* corruption accepted: the property fails *)
        | exception Ickpt_stream.In_stream.Corrupt _ -> true)

(* Truncation at every possible point is detected. *)
let segment_truncation_sweep () =
  let seg =
    { Segment.kind = Segment.Full; seq = 0; roots = [ 9 ]; body = "abcdefgh" }
  in
  let encoded = Segment.encode seg in
  for len = 0 to String.length encoded - 1 do
    match Segment.decode (String.sub encoded 0 len) ~pos:0 with
    | _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | exception Ickpt_stream.In_stream.Corrupt _ -> ()
  done

(* Garbage prefixes never decode. *)
let prop_garbage_never_decodes =
  QCheck2.Test.make ~name:"random bytes do not decode as a segment" ~count:200
    QCheck2.Gen.(string_size ~gen:char (int_range 0 64))
    (fun junk ->
      match Segment.decode junk ~pos:0 with
      | _ -> false
      | exception Ickpt_stream.In_stream.Corrupt _ -> true)

(* ---- Figure 6 structure: the BTA-phase residual code ---------------------- *)

let bta_residual_structure () =
  let attrs = Ickpt_analysis.Attrs.create ~n_stmts:1 in
  let plan = Jspec.Pe.specialize (Ickpt_analysis.Attrs.bta_shape attrs) in
  (* The residual code must bind the BTEntry and BT objects but never the
     SEEntry's VarRef lists or the ET leaf (their subtrees are clean).
     var_klass is a superset (it records candidates whose bindings were
     dropped), so inspect the variables actually bound in the body. *)
  let bound_klasses plan =
    let vars = ref [] in
    let rec go = function
      | [] -> ()
      | Jspec.Cklang.Let (v, _, b) :: rest ->
          vars := v :: !vars;
          go b;
          go rest
      | Jspec.Cklang.If (_, t, f) :: rest ->
          go t;
          go f;
          go rest
      | Jspec.Cklang.For (_, _, _, b) :: rest ->
          go b;
          go rest
      | _ :: rest -> go rest
    in
    go plan.Jspec.Pe.body;
    List.filter_map
      (fun v -> List.assoc_opt v plan.Jspec.Pe.var_klass)
      !vars
  in
  let bta_bound = bound_klasses plan in
  check_bool "binds BT" true (List.mem "BT" bta_bound);
  check_bool "never binds VarRef" false (List.mem "VarRef" bta_bound);
  (* One residual modified-test: the BT leaf. *)
  let java = Jspec.Java_pp.to_string plan in
  check_bool "records something" true
    (Test_util.contains_substring java "d.writeInt");
  (* No generic fallback: the whole attribute structure is static. *)
  let rec has_generic = function
    | [] -> false
    | Jspec.Cklang.Call_generic _ :: _ -> true
    | Jspec.Cklang.If (_, t, f) :: rest ->
        has_generic t || has_generic f || has_generic rest
    | Jspec.Cklang.Let (_, _, b) :: rest
    | Jspec.Cklang.For (_, _, _, b) :: rest ->
        has_generic b || has_generic rest
    | _ :: rest -> has_generic rest
  in
  check_bool "no generic fallback" false (has_generic plan.Jspec.Pe.body);
  (* The ETA plan mirrors it with ET in place of BT. *)
  let eta = Jspec.Pe.specialize (Ickpt_analysis.Attrs.eta_shape attrs) in
  let eta_bound = bound_klasses eta in
  check_bool "eta binds ET" true (List.mem "ET" eta_bound);
  check_bool "eta never binds BT" false (List.mem "BT" eta_bound)

let residual_size_scales_with_tracking () =
  (* More static knowledge => less residual code. *)
  let env = Test_util.make_env ()
  and stmts shape = Jspec.Cklang.stmt_count (Jspec.Pe.specialize shape).Jspec.Pe.body in
  ignore env;
  let t = Ickpt_synth.Synth.build
      { Ickpt_synth.Synth.default_config with
        Ickpt_synth.Synth.n_structures = 1; modified_lists = 1; last_only = true }
  in
  let s_struct = stmts (Ickpt_synth.Synth.shape_structure t) in
  let s_lists = stmts (Ickpt_synth.Synth.shape_modified_lists t) in
  let s_last = stmts (Ickpt_synth.Synth.shape_last_only t) in
  check_bool "structure > lists" true (s_struct > s_lists);
  check_bool "lists > last-only" true (s_lists > s_last)

(* ---- two-level annotation --------------------------------------------------- *)

let two_level_annotations () =
  let env = Test_util.make_env () in
  (* Tracked receiver: the modified test stays, the fold's loop unrolls,
     the record/fold dispatches resolve. *)
  let tracked = Jspec.Sclass.leaf env.Test_util.pair in
  let anns = Jspec.Bta.annotate_method tracked Jspec.Cklang.M_checkpoint in
  let actions = List.map snd anns in
  check_bool "test residual on tracked" true
    (List.mem Jspec.Bta.Residual actions);
  check_bool "fold resolved" true (List.mem Jspec.Bta.Resolved actions);
  (* Clean receiver: the test statically reduces. *)
  let clean = Jspec.Sclass.leaf ~status:Jspec.Sclass.Clean env.Test_util.pair in
  let anns = Jspec.Bta.annotate_method clean Jspec.Cklang.M_checkpoint in
  (match List.map snd anns with
  | [ Jspec.Bta.Reduced; _ ] -> ()
  | other ->
      Alcotest.failf "unexpected annotations: %s"
        (String.concat ","
           (List.map (Format.asprintf "%a" Jspec.Bta.pp_action) other)));
  (* The record method's field loops unroll for any shaped receiver. *)
  let anns = Jspec.Bta.annotate_method tracked Jspec.Cklang.M_record in
  check_bool "record loops unrolled" true
    (List.for_all (fun (_, a) -> a = Jspec.Bta.Unrolled) anns);
  (* Unknown child: the checkpoint call inside fold falls back — visible
     when annotating fold for a shape whose child is Unknown. *)
  let with_unknown =
    Jspec.Sclass.shape env.Test_util.pair
      [| Jspec.Sclass.Unknown; Jspec.Sclass.Null_child |]
  in
  let rendered =
    Format.asprintf "%a" Jspec.Bta.pp_two_level
      (Jspec.Bta.annotate_method with_unknown Jspec.Cklang.M_fold)
  in
  check_bool "two-level output renders" true
    (Test_util.contains_substring rendered "S:unrolled")

(* ---- interpreter instrumentation ------------------------------------------ *)

let interp_counts_dispatches () =
  let env = Test_util.make_env () in
  let root =
    Test_util.build env
      (Test_util.Pair (1, 2, Some (Test_util.Leaf 3), Some (Test_util.Leaf 4)))
  in
  let before = Jspec.Interp.dispatch_count () in
  let d = Ickpt_stream.Out_stream.sink () in
  Jspec.Interp.run_program Jspec.Generic_method.program d root;
  let dispatches = Jspec.Interp.dispatch_count () - before in
  (* Three objects, two virtual calls each (record while modified + fold),
     plus two recursive checkpoint invocations of the children resolved
     through the same method table (the root's checkpoint body runs
     directly). *)
  check_int "dispatch accounting" 8 dispatches

(* ---- heap sweep and dot export --------------------------------------------- *)

let heap_sweep () =
  let env = Test_util.make_env () in
  let root =
    Test_util.build env (Test_util.Pair (1, 2, Some (Test_util.Leaf 3), None))
  in
  let orphan = Test_util.build env (Test_util.Leaf 99) in
  check_int "all registered" 3 (Ickpt_runtime.Heap.count env.Test_util.heap);
  let removed =
    Ickpt_runtime.Heap.sweep env.Test_util.heap ~roots:[ root ]
  in
  check_int "one orphan swept" 1 removed;
  check_int "registry shrank" 2 (Ickpt_runtime.Heap.count env.Test_util.heap);
  check_bool "orphan gone" true
    (Option.is_none
       (Ickpt_runtime.Heap.find env.Test_util.heap
          orphan.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id));
  (* Allocation ids keep progressing. *)
  let next = Ickpt_runtime.Heap.next_id env.Test_util.heap in
  let fresh = Ickpt_runtime.Heap.alloc env.Test_util.heap env.Test_util.leaf in
  check_int "ids not reused" next fresh.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id

let heap_sweep_after_analysis () =
  (* The analysis engine's superseded VarRef chains become sweepable. *)
  let attrs = Ickpt_analysis.Attrs.create ~n_stmts:2 in
  ignore (Ickpt_analysis.Attrs.set_reads attrs 0 [ 1; 2; 3 ]);
  ignore (Ickpt_analysis.Attrs.set_reads attrs 0 [ 4 ]);
  let removed =
    Ickpt_runtime.Heap.sweep
      (Ickpt_analysis.Attrs.heap attrs)
      ~roots:(Ickpt_analysis.Attrs.roots attrs)
  in
  check_int "old chain swept" 3 removed;
  Alcotest.(check (list int))
    "live chain intact" [ 4 ]
    (Ickpt_analysis.Attrs.get_reads attrs 0)

let dot_export () =
  let env = Test_util.make_env () in
  let root =
    Test_util.build env (Test_util.Pair (1, 2, Some (Test_util.Leaf 3), None))
  in
  Ickpt_runtime.Heap.clear_all_modified env.Test_util.heap;
  (match root.Ickpt_runtime.Model.children.(0) with
  | Some leaf -> Ickpt_runtime.Barrier.touch leaf
  | None -> Alcotest.fail "missing child");
  let dot = Ickpt_runtime.Dot.to_dot [ root ] in
  check_bool "digraph" true (Test_util.contains_substring dot "digraph heap");
  check_bool "names classes" true (Test_util.contains_substring dot "Pair #");
  check_bool "edge present" true (Test_util.contains_substring dot "->");
  check_bool "dirty node marked" true
    (Test_util.contains_substring dot "peripheries=2")

(* ---- harness utilities ----------------------------------------------------- *)

let table_rendering () =
  let t =
    Ickpt_harness.Table.create ~title:"demo" ~columns:[ "a"; "long header" ]
  in
  Ickpt_harness.Table.add_row t [ "x"; "y" ];
  Ickpt_harness.Table.add_row t [ "longer cell"; "z" ];
  let s = Ickpt_harness.Table.to_string t in
  check_bool "title present" true (Test_util.contains_substring s "== demo ==");
  check_bool "cells aligned" true (Test_util.contains_substring s "longer cell");
  match Ickpt_harness.Table.add_row t [ "too"; "many"; "cells" ] with
  | _ -> Alcotest.fail "row width mismatch accepted"
  | exception Invalid_argument _ -> ()

let table_cells () =
  let open Ickpt_harness.Table in
  check_bool "bytes mb" true (cell_bytes 12_300_000 = "12.30 Mb");
  check_bool "bytes kb" true (cell_bytes 4_500 = "4.5 Kb");
  check_bool "bytes b" true (cell_bytes 321 = "321 b");
  check_bool "seconds" true (cell_seconds 1.5 = "1.50 s");
  check_bool "millis" true (cell_seconds 0.0042 = "4.20 ms");
  check_bool "micros" true (cell_seconds 0.0000042 = "4.2 us");
  check_bool "speedup" true (cell_speedup 3.14159 = "3.14x");
  check_bool "ratio" true (cell_ratio 1 2 = "0.50");
  check_bool "ratio zero" true (cell_ratio 1 0 = "n/a")

let clock_sanity () =
  let (), s = Ickpt_harness.Clock.time (fun () -> Sys.opaque_identity (ignore (Array.make 1000 0))) in
  check_bool "non-negative" true (s >= 0.0);
  let x, best = Ickpt_harness.Clock.best_of ~repeats:3 (fun () -> 42) in
  check_int "result returned" 42 x;
  check_bool "best non-negative" true (best >= 0.0)

(* ---- policy edge cases ------------------------------------------------------ *)

let policy_bytes_limit_progression () =
  let env = Test_util.make_env () in
  let root = Test_util.build env (Test_util.Pair (0, 0, None, None)) in
  let chain = Chain.create env.Test_util.schema in
  let policy = Policy.Chain_bytes_limit 20 in
  ignore (Chain.take_full chain [ root ]);
  (* Small incrementals accumulate until the limit trips a full. *)
  let rec drive kinds n =
    if n = 0 then List.rev kinds
    else begin
      Ickpt_runtime.Barrier.set_int root 0 n;
      let kind = Policy.decide policy chain in
      (match kind with
      | Segment.Full -> ignore (Chain.take_full chain [ root ])
      | Segment.Incremental -> ignore (Chain.take_incremental chain [ root ]));
      drive (kind :: kinds) (n - 1)
    end
  in
  let kinds = drive [] 8 in
  check_bool "at least one forced full" true
    (List.exists (fun k -> k = Segment.Full) kinds);
  check_bool "not all full" true
    (List.exists (fun k -> k = Segment.Incremental) kinds)

let policy_full_every_validation () =
  let env = Test_util.make_env () in
  let chain = Chain.create env.Test_util.schema in
  let root = Test_util.build env (Test_util.Leaf 0) in
  ignore (Chain.take_full chain [ root ]);
  match Policy.decide (Policy.Full_every 0) chain with
  | _ -> Alcotest.fail "Full_every 0 accepted"
  | exception Invalid_argument _ -> ()

let suites =
  [ ( "fuzz",
      [ QCheck_alcotest.to_alcotest prop_segment_bitflip_detected;
        Alcotest.test_case "truncation sweep" `Quick segment_truncation_sweep;
        QCheck_alcotest.to_alcotest prop_garbage_never_decodes ] );
    ( "residual-structure",
      [ Alcotest.test_case "bta residual (Fig 6)" `Quick bta_residual_structure;
        Alcotest.test_case "residual size vs knowledge" `Quick
          residual_size_scales_with_tracking ] );
    ( "instrumentation",
      [ Alcotest.test_case "interp dispatch count" `Quick
          interp_counts_dispatches ] );
    ( "two-level",
      [ Alcotest.test_case "annotations" `Quick two_level_annotations ] );
    ( "heap-extras",
      [ Alcotest.test_case "sweep" `Quick heap_sweep;
        Alcotest.test_case "sweep after analysis" `Quick
          heap_sweep_after_analysis;
        Alcotest.test_case "dot export" `Quick dot_export ] );
    ( "harness",
      [ Alcotest.test_case "table rendering" `Quick table_rendering;
        Alcotest.test_case "table cells" `Quick table_cells;
        Alcotest.test_case "clock sanity" `Quick clock_sanity ] );
    ( "policy-edge",
      [ Alcotest.test_case "bytes limit progression" `Quick
          policy_bytes_limit_progression;
        Alcotest.test_case "full_every validation" `Quick
          policy_full_every_validation ] ) ]
