open Minic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- lexer -------------------------------------------------------------- *)

let lexer_basics () =
  let toks = Lexer.tokenize "int x = 42; // comment\nx = x + 1;" in
  let kinds = List.map fst toks in
  check_bool "has ident" true (List.mem (Lexer.IDENT "x") kinds);
  check_bool "has literal" true (List.mem (Lexer.INT_LIT 42) kinds);
  check_bool "ends with eof" true (List.nth kinds (List.length kinds - 1) = Lexer.EOF);
  (* line numbers advance past newlines *)
  let _, last_line = List.nth toks (List.length toks - 1) in
  check_int "line 2" 2 last_line

let lexer_comments () =
  let toks = Lexer.tokenize "/* block \n comment */ int y;" in
  check_int "only 4 tokens" 4 (List.length toks)

let lexer_operators () =
  let src = "<= >= == != && || < > = ! + - * / %" in
  let kinds = List.map fst (Lexer.tokenize src) in
  let expected =
    [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
      Lexer.LT; Lexer.GT; Lexer.ASSIGN; Lexer.NOT; Lexer.PLUS; Lexer.MINUS;
      Lexer.STAR; Lexer.SLASH; Lexer.PERCENT; Lexer.EOF ]
  in
  check_bool "operator tokens" true (kinds = expected)

let lexer_errors () =
  (match Lexer.tokenize "int @ x;" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Lexer.Lex_error _ -> ());
  match Lexer.tokenize "/* never closed" with
  | _ -> Alcotest.fail "expected Lex_error on unterminated comment"
  | exception Lexer.Lex_error _ -> ()

(* ---- parser ------------------------------------------------------------- *)

let parse_precedence () =
  let p = Parser.parse "int main() { return 1 + 2 * 3; }" in
  match (List.hd p.Ast.funcs).Ast.f_body with
  | [ { Ast.node = Ast.S_return (Some e); _ } ] -> (
      match e with
      | Ast.E_binop (Ast.B_add, Ast.E_int 1,
                     Ast.E_binop (Ast.B_mul, Ast.E_int 2, Ast.E_int 3)) -> ()
      | _ -> Alcotest.fail "wrong precedence tree")
  | _ -> Alcotest.fail "unexpected body"

let parse_left_assoc () =
  let p = Parser.parse "int main() { return 10 - 3 - 2; }" in
  match (List.hd p.Ast.funcs).Ast.f_body with
  | [ { Ast.node = Ast.S_return (Some
        (Ast.E_binop (Ast.B_sub,
                      Ast.E_binop (Ast.B_sub, Ast.E_int 10, Ast.E_int 3),
                      Ast.E_int 2))); _ } ] -> ()
  | _ -> Alcotest.fail "subtraction must associate left"

let parse_statements () =
  let src =
    "int g; int buf[4];\n\
     void f(int a, int b) { g = a; }\n\
     int main() { int t = 5; buf[1] = t; if (t > 2) { f(t, 1); } else { t = \
     0; } while (t > 0) { t = t - 1; } return g; }"
  in
  let p = Parser.parse src in
  check_int "two functions" 2 (List.length p.Ast.funcs);
  check_int "two globals" 2 (List.length p.Ast.globals);
  check_int "statement count" 8 (Ast.stmt_count p)

let parse_errors () =
  let bad = [ "int main() { return 1 }"; "int main( { }"; "int 3x;"; "x = 1;" ] in
  List.iter
    (fun src ->
      match Parser.parse src with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Parser.Parse_error _ -> ())
    bad

let number_idempotent () =
  let p = Gen.small_program () in
  check_bool "idempotent" true (Ast.number p = p)

(* ---- pretty printer round-trips ----------------------------------------- *)

let roundtrip p =
  let src = Pp.to_string p in
  match Parser.parse src with
  | p2 -> Ast.equal p p2
  | exception e ->
      Alcotest.failf "reparse failed: %s on@.%s" (Printexc.to_string e) src

let pp_roundtrip_small () =
  check_bool "small" true (roundtrip (Gen.small_program ()))

let pp_roundtrip_image () =
  check_bool "image" true (roundtrip (Gen.image_program ()))

let pp_roundtrip_tricky () =
  (* Constructs that exercise parenthesization. *)
  let srcs =
    [ "int main() { return (1 + 2) * 3; }";
      "int main() { return 1 - (2 - 3); }";
      "int main() { return -(1 + 2); }";
      "int main() { return !(1 < 2) + 3; }";
      "int main() { return (1 < 2) == (3 < 4); }";
      "int main() { return 1 && (2 || 3); }";
      "int main() { return 5 % 3 * 2 / 4; }";
      "int main() { return - -5; }" ]
  in
  List.iter
    (fun src ->
      let p = Parser.parse src in
      check_bool src true (roundtrip p))
    srcs

(* Random expressions over two variables survive print-then-parse. *)
let expr_gen : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof
             [ map (fun k -> Ast.E_int k) (int_range (-50) 50);
               oneofl [ Ast.E_var "a"; Ast.E_var "b" ];
               map (fun i -> Ast.E_index ("buf", Ast.E_int (abs i mod 4))) small_int
             ]
         else
           let sub = self (n / 2) in
           frequency
             [ (1, map (fun k -> Ast.E_int k) (int_range (-50) 50));
               (1, oneofl [ Ast.E_var "a"; Ast.E_var "b" ]);
               ( 4,
                 map3
                   (fun op l r -> Ast.E_binop (op, l, r))
                   (oneofl
                      [ Ast.B_add; Ast.B_sub; Ast.B_mul; Ast.B_div; Ast.B_mod;
                        Ast.B_lt; Ast.B_le; Ast.B_gt; Ast.B_ge; Ast.B_eq;
                        Ast.B_ne; Ast.B_and; Ast.B_or ])
                   sub sub );
               (1, map (fun e -> Ast.E_unop (Ast.U_not, e)) sub) ])

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expression print/parse roundtrip" ~count:300
    expr_gen (fun e ->
      let p =
        Ast.number
          { Ast.globals =
              [ { Ast.v_name = "a"; v_typ = Ast.T_int; v_init = 1 };
                { Ast.v_name = "b"; v_typ = Ast.T_int; v_init = 2 };
                { Ast.v_name = "buf"; v_typ = Ast.T_array 4; v_init = 0 } ];
            funcs =
              [ { Ast.f_name = "main"; f_params = []; f_locals = [];
                  f_body = [ Ast.stmt (Ast.S_return (Some e)) ];
                  f_ret = Ast.T_int } ] }
      in
      roundtrip p)

(* ---- checker ------------------------------------------------------------ *)

let check_valid () =
  ignore (Check.check (Gen.small_program ()));
  let env = Check.check (Gen.image_program ()) in
  check_bool "width is a global" true (Check.global_id env "width" <> None);
  check_bool "image is array" true (Check.is_global_array env "image");
  check_bool "width not array" false (Check.is_global_array env "width");
  check_bool "locals have no gid" true (Check.global_id env "nosuch" = None)

let check_rejects () =
  let bad =
    [ ("int g; int g;", "duplicate global");
      ("int main() { return x; }", "undefined variable");
      ("int f() { return 1; } int main() { return f(1); }", "arity");
      ("int g; int main() { return g[0]; }", "index non-array");
      ("int g[3]; int main() { g = 1; return 0; }", "assign array");
      ("int f() { return 1; }", "no main") ]
  in
  List.iter
    (fun (src, what) ->
      match Check.check (Parser.parse src) with
      | _ -> Alcotest.failf "accepted: %s" what
      | exception Check.Check_error _ -> ())
    bad

(* ---- interpreter -------------------------------------------------------- *)

let interp_small () =
  let o = Interp.run (Gen.small_program ()) in
  check_bool "returns 17" true (o.Interp.return_value = Some 17)

let interp_features () =
  let run src =
    (Interp.run (Parser.parse src)).Interp.return_value
  in
  check_bool "while loop" true
    (run "int main() { int i; int s; i = 0; s = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }"
    = Some 10);
  check_bool "recursion" true
    (run "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(10); }"
    = Some 55);
  check_bool "short circuit and" true
    (run "int boom() { return 1 / 0; } int main() { if (0 && boom()) { return 1; } return 2; }"
    = Some 2);
  check_bool "array store/load" true
    (run "int a[3]; int main() { a[0] = 7; a[2] = a[0] * 2; return a[2]; }"
    = Some 14)

let interp_errors () =
  let expect_error src =
    match Interp.run (Parser.parse src) with
    | _ -> Alcotest.failf "no error for %s" src
    | exception Interp.Runtime_error _ -> ()
  in
  expect_error "int main() { return 1 / 0; }";
  expect_error "int a[2]; int main() { return a[5]; }";
  expect_error "int a[2]; int main() { a[0-1] = 3; return 0; }";
  match Interp.run ~max_steps:10 (Parser.parse "int main() { while (1) { } return 0; }") with
  | _ -> Alcotest.fail "step budget not enforced"
  | exception Interp.Runtime_error _ -> ()

let interp_image () =
  let o = Interp.run (Gen.image_program ~width:12 ~height:8 ~n_filters:3 ()) in
  check_bool "terminates with checksum" true (o.Interp.return_value <> None)

(* ---- generator ---------------------------------------------------------- *)

let gen_shape () =
  let p = Gen.image_program () in
  ignore (Check.check p);
  let lines = Pp.line_count p in
  check_bool "roughly 750 lines" true (lines >= 650 && lines <= 850);
  check_bool "static globals exist" true
    (List.for_all
       (fun g -> List.exists (fun d -> d.Ast.v_name = g) p.Ast.globals)
       Gen.static_globals)

let gen_deterministic () =
  check_bool "generator is deterministic" true
    (Gen.image_program () = Gen.image_program ())

let suites =
  [ ( "minic-lexer",
      [ Alcotest.test_case "basics" `Quick lexer_basics;
        Alcotest.test_case "comments" `Quick lexer_comments;
        Alcotest.test_case "operators" `Quick lexer_operators;
        Alcotest.test_case "errors" `Quick lexer_errors ] );
    ( "minic-parser",
      [ Alcotest.test_case "precedence" `Quick parse_precedence;
        Alcotest.test_case "left assoc" `Quick parse_left_assoc;
        Alcotest.test_case "statements" `Quick parse_statements;
        Alcotest.test_case "errors" `Quick parse_errors;
        Alcotest.test_case "number idempotent" `Quick number_idempotent ] );
    ( "minic-pp",
      [ Alcotest.test_case "roundtrip small" `Quick pp_roundtrip_small;
        Alcotest.test_case "roundtrip image" `Quick pp_roundtrip_image;
        Alcotest.test_case "roundtrip tricky" `Quick pp_roundtrip_tricky;
        QCheck_alcotest.to_alcotest prop_expr_roundtrip ] );
    ( "minic-check",
      [ Alcotest.test_case "valid" `Quick check_valid;
        Alcotest.test_case "rejects" `Quick check_rejects ] );
    ( "minic-interp",
      [ Alcotest.test_case "small program" `Quick interp_small;
        Alcotest.test_case "features" `Quick interp_features;
        Alcotest.test_case "errors" `Quick interp_errors;
        Alcotest.test_case "image program" `Quick interp_image ] );
    ( "minic-gen",
      [ Alcotest.test_case "shape" `Quick gen_shape;
        Alcotest.test_case "deterministic" `Quick gen_deterministic ] ) ]
