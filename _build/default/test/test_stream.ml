open Ickpt_stream

let check_int = Alcotest.(check int)

let varint_roundtrip () =
  let cases =
    [ 0; 1; -1; 2; -2; 63; 64; -64; -65; 127; 128; 300; -300; 0xdeadbeef;
      -0xdeadbeef; max_int; min_int; max_int - 1; min_int + 1 ]
  in
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Varint.write buf n;
      let s = Buffer.contents buf in
      check_int
        (Printf.sprintf "encoded_size %d" n)
        (String.length s) (Varint.encoded_size n);
      let v, next = Varint.read s 0 in
      check_int (Printf.sprintf "roundtrip %d" n) n v;
      check_int "consumed all" (String.length s) next)
    cases

let varint_zigzag () =
  check_int "zz 0" 0 (Varint.zigzag 0);
  check_int "zz -1" 1 (Varint.zigzag (-1));
  check_int "zz 1" 2 (Varint.zigzag 1);
  check_int "zz -2" 3 (Varint.zigzag (-2));
  List.iter
    (fun n -> check_int "unzz inverse" n (Varint.unzigzag (Varint.zigzag n)))
    [ 0; 5; -5; max_int; min_int ]

let varint_truncated () =
  let buf = Buffer.create 4 in
  Varint.write buf max_int;
  let s = Buffer.contents buf in
  let truncated = String.sub s 0 (String.length s - 1) in
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated input")
    (fun () -> ignore (Varint.read truncated 0))

let crc32_vector () =
  (* Standard IEEE CRC-32 check value. *)
  check_int "123456789" 0xcbf43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  (* Incremental computation must agree with one-shot. *)
  let s = "hello, checkpoint world" in
  let half = String.length s / 2 in
  let c1 = Crc32.sub s ~pos:0 ~len:half in
  let c2 = Crc32.sub s ~pos:half ~len:(String.length s - half) ~crc:c1 in
  check_int "incremental" (Crc32.string s) c2

let stream_roundtrip () =
  let d = Out_stream.create () in
  Out_stream.write_int d 42;
  Out_stream.write_byte d 0xab;
  Out_stream.write_fixed32 d 0xdeadbeef;
  Out_stream.write_string d "payload";
  Out_stream.write_int d (-7);
  let inp = In_stream.of_string (Out_stream.contents d) in
  check_int "int" 42 (In_stream.read_int inp);
  check_int "byte" 0xab (In_stream.read_byte inp);
  check_int "fixed32" 0xdeadbeef (In_stream.read_fixed32 inp);
  Alcotest.(check string) "string" "payload" (In_stream.read_string inp);
  check_int "neg int" (-7) (In_stream.read_int inp);
  Alcotest.(check bool) "at_end" true (In_stream.at_end inp)

let sink_counts () =
  let ops d =
    Out_stream.write_int d 123456;
    Out_stream.write_byte d 7;
    Out_stream.write_string d "abcdef";
    Out_stream.write_fixed32 d 99;
    Out_stream.write_int d min_int
  in
  let buffered = Out_stream.create () in
  let sink = Out_stream.sink () in
  ops buffered;
  ops sink;
  check_int "sink size = buffered size" (Out_stream.size buffered)
    (Out_stream.size sink);
  Alcotest.(check bool) "is_sink" true (Out_stream.is_sink sink);
  Alcotest.check_raises "sink contents"
    (Invalid_argument "Out_stream.contents: sink stream") (fun () ->
      ignore (Out_stream.contents sink))

let reset_stream () =
  let d = Out_stream.create () in
  Out_stream.write_int d 5;
  Out_stream.reset d;
  check_int "size 0 after reset" 0 (Out_stream.size d);
  Out_stream.write_int d 9;
  let inp = In_stream.of_string (Out_stream.contents d) in
  check_int "only post-reset data" 9 (In_stream.read_int inp)

let in_stream_errors () =
  let inp = In_stream.of_string "" in
  Alcotest.(check bool) "empty at_end" true (In_stream.at_end inp);
  (match In_stream.read_byte inp with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception In_stream.Corrupt _ -> ());
  let d = Out_stream.create () in
  Out_stream.write_byte d 3;
  let inp = In_stream.of_string (Out_stream.contents d) in
  match In_stream.expect_byte inp 4 "tag" with
  | () -> Alcotest.fail "expected Corrupt on tag mismatch"
  | exception In_stream.Corrupt msg ->
      Alcotest.(check bool) "message names tag" true
        (String.length msg > 0)

let of_string_at () =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d 1;
  Out_stream.write_fixed32 d 2;
  let s = Out_stream.contents d in
  let inp = In_stream.of_string_at s ~pos:4 in
  check_int "reads second word" 2 (In_stream.read_fixed32 inp);
  Alcotest.check_raises "bad pos" (Invalid_argument "In_stream.of_string_at")
    (fun () -> ignore (In_stream.of_string_at s ~pos:100))

(* Property: any int sequence survives a write/read roundtrip, and the sink
   stream always reports the same size as the buffered stream. *)
let prop_int_roundtrip =
  QCheck2.Test.make ~name:"varint roundtrip (random)" ~count:500
    QCheck2.Gen.(list (frequency [ (5, int); (1, oneofl [ max_int; min_int; 0 ]) ]))
    (fun ints ->
      let d = Out_stream.create () in
      let sink = Out_stream.sink () in
      List.iter
        (fun n ->
          Out_stream.write_int d n;
          Out_stream.write_int sink n)
        ints;
      let inp = In_stream.of_string (Out_stream.contents d) in
      let back = List.map (fun _ -> In_stream.read_int inp) ints in
      back = ints
      && In_stream.at_end inp
      && Out_stream.size d = Out_stream.size sink)

let prop_crc_detects_flip =
  QCheck2.Test.make ~name:"crc32 detects single bit flip" ~count:200
    QCheck2.Gen.(
      pair (string_size ~gen:char (int_range 1 64)) (int_range 0 1000))
    (fun (s, r) ->
      let pos = r mod String.length s in
      let bit = r mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b pos
        (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Crc32.string s <> Crc32.bytes b)

let suites =
  [ ( "stream",
      [ Alcotest.test_case "varint roundtrip" `Quick varint_roundtrip;
        Alcotest.test_case "varint zigzag" `Quick varint_zigzag;
        Alcotest.test_case "varint truncated" `Quick varint_truncated;
        Alcotest.test_case "crc32 vector" `Quick crc32_vector;
        Alcotest.test_case "stream roundtrip" `Quick stream_roundtrip;
        Alcotest.test_case "sink counts" `Quick sink_counts;
        Alcotest.test_case "reset" `Quick reset_stream;
        Alcotest.test_case "in_stream errors" `Quick in_stream_errors;
        Alcotest.test_case "of_string_at" `Quick of_string_at;
        QCheck_alcotest.to_alcotest prop_int_roundtrip;
        QCheck_alcotest.to_alcotest prop_crc_detects_flip ] ) ]
