open Ickpt_runtime
open Ickpt_synth

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small c =
  { c with Synth.n_structures = 40; seed = 42 }

let config ?(list_len = 5) ?(n_int_fields = 3) ?(pct = 100) ?(mod_lists = 5)
    ?(last_only = false) () =
  small
    { Synth.default_config with
      Synth.list_len;
      n_int_fields;
      pct_modified = pct;
      modified_lists = mod_lists;
      last_only }

let build_counts () =
  let t = Synth.build (config ()) in
  check_int "objects allocated"
    (Synth.paper_total_objects t.Synth.config)
    (Heap.count t.Synth.heap);
  check_int "elements" (40 * 5 * 5) (Synth.element_count t);
  check_int "roots" 40 (List.length (Synth.roots t));
  (* Every list has the declared length. *)
  let root = List.hd (Synth.roots t) in
  let rec len = function
    | None -> 0
    | Some (e : Model.obj) -> 1 + len e.Model.children.(0)
  in
  Array.iter (fun c -> check_int "list length" 5 (len c)) root.Model.children

let build_validation () =
  let bad = { Synth.default_config with Synth.pct_modified = 150 } in
  match Synth.build bad with
  | _ -> Alcotest.fail "invalid config accepted"
  | exception Invalid_argument _ -> ()

let mutate_respects_constraints () =
  (* last_only with 2 modifiable lists at 100%: exactly 2 dirty elements
     per structure, each the last of its list. *)
  let t = Synth.build (config ~mod_lists:2 ~last_only:true ()) in
  Synth.base_checkpoint t;
  let dirtied = Synth.mutate_round t in
  check_int "2 per structure" (40 * 2) dirtied;
  check_int "heap agrees" (40 * 2) (Heap.modified_count t.Synth.heap);
  List.iter
    (fun root ->
      Array.iteri
        (fun l head ->
          let rec walk pos = function
            | None -> ()
            | Some (e : Model.obj) ->
                let is_last = pos = 4 in
                let may_dirty = l < 2 && is_last in
                if not may_dirty then
                  check_bool "clean position stays clean" false
                    e.Model.info.Model.modified;
                walk (pos + 1) e.Model.children.(0)
          in
          walk 0 head)
        root.Model.children)
    (Synth.roots t)

let mutate_pct_zero_and_partial () =
  let t = Synth.build (config ~pct:0 ()) in
  Synth.base_checkpoint t;
  check_int "0%% dirties nothing" 0 (Synth.mutate_round t);
  let t = Synth.build (config ~pct:50 ()) in
  Synth.base_checkpoint t;
  let d = Synth.mutate_round t in
  let candidates = 40 * 5 * 5 in
  check_bool "about half dirty" true
    (d > candidates * 35 / 100 && d < candidates * 65 / 100)

let mutate_deterministic () =
  let run () =
    let t = Synth.build (config ~pct:25 ()) in
    Synth.base_checkpoint t;
    (Synth.mutate_round t, Synth.mutate_round t)
  in
  check_bool "seeded determinism" true (run () = run ())

let shapes_validate () =
  let t = Synth.build (config ~mod_lists:3 ~last_only:true ()) in
  let s_struct = Synth.shape_structure t in
  let s_lists = Synth.shape_modified_lists t in
  let s_last = Synth.shape_last_only t in
  List.iter Jspec.Sclass.validate [ s_struct; s_lists; s_last ];
  (* structure: everything tracked: 1 compound + 25 elements *)
  check_int "structure tracked" 26 (Jspec.Sclass.tracked_count s_struct);
  (* modified lists: 3 lists of 5 *)
  check_int "modified-lists tracked" 15 (Jspec.Sclass.tracked_count s_lists);
  (* last-only: 3 last elements *)
  check_int "last-only tracked" 3 (Jspec.Sclass.tracked_count s_last)

(* The synthetic equivalence property: for each level of declaration, the
   specialized runner produces the same bytes as the generic incremental
   checkpointer over the whole population, after a conforming mutation
   round. Two identically-seeded builds give identical object ids. *)
let specialized_equals_generic_bytes cfg shape_of =
  let run runner_of =
    let t = Synth.build cfg in
    Synth.base_checkpoint t;
    ignore (Synth.mutate_round t);
    let d = Ickpt_stream.Out_stream.create () in
    runner_of t d;
    Ickpt_stream.Out_stream.contents d
  in
  let generic =
    run (fun t d ->
        List.iter (Ickpt_core.Checkpointer.incremental d) (Synth.roots t))
  in
  let specialized =
    run (fun t d ->
        let runner = Jspec.Compile.residual (Jspec.Pe.specialize (shape_of t)) in
        List.iter (fun r -> runner d r) (Synth.roots t))
  in
  generic = specialized

let spec_structure_bytes () =
  check_bool "structure shape" true
    (specialized_equals_generic_bytes (config ~pct:50 ()) Synth.shape_structure)

let spec_modified_lists_bytes () =
  check_bool "modified-lists shape" true
    (specialized_equals_generic_bytes
       (config ~pct:50 ~mod_lists:2 ())
       Synth.shape_modified_lists)

let spec_last_only_bytes () =
  check_bool "last-only shape" true
    (specialized_equals_generic_bytes
       (config ~pct:50 ~mod_lists:3 ~last_only:true ())
       Synth.shape_last_only)

let guard_accepts_conforming_config () =
  let t = Synth.build (config ~mod_lists:2 ~last_only:true ()) in
  Synth.base_checkpoint t;
  ignore (Synth.mutate_round t);
  let shape = Synth.shape_last_only t in
  List.iter
    (fun root ->
      match Jspec.Guard.check shape root with
      | [] -> ()
      | v :: _ -> Alcotest.failf "violation: %a" Jspec.Guard.pp_violation v)
    (Synth.roots t)

let guard_catches_nonconforming_mutation () =
  let t = Synth.build (config ~mod_lists:2 ~last_only:true ()) in
  Synth.base_checkpoint t;
  (* Dirty a first element — violates the last-only declaration. *)
  let root = List.hd (Synth.roots t) in
  (match root.Model.children.(0) with
  | Some e -> Barrier.touch e
  | None -> Alcotest.fail "missing element");
  let shape = Synth.shape_last_only t in
  check_bool "violation detected" true (Jspec.Guard.check shape root <> [])

let full_chain_recovery () =
  let t = Synth.build (config ~pct:25 ()) in
  let chain = Ickpt_core.Chain.create t.Synth.schema in
  ignore (Ickpt_core.Chain.take_full chain (Synth.roots t));
  for _ = 1 to 3 do
    ignore (Synth.mutate_round t);
    ignore (Ickpt_core.Chain.take_incremental chain (Synth.roots t))
  done;
  match Ickpt_core.Chain.recover chain with
  | Error e -> Alcotest.fail e
  | Ok (_, roots') ->
      check_int "all roots back" 40 (List.length roots');
      List.iter2
        (fun a b ->
          match Deep_eq.compare_graphs a b with
          | None -> ()
          | Some m -> Alcotest.failf "mismatch: %a" Deep_eq.pp_mismatch m)
        (Synth.roots t) roots'

let suites =
  [ ( "synth",
      [ Alcotest.test_case "build counts" `Quick build_counts;
        Alcotest.test_case "config validation" `Quick build_validation;
        Alcotest.test_case "mutate respects constraints" `Quick
          mutate_respects_constraints;
        Alcotest.test_case "pct 0 and 50" `Quick mutate_pct_zero_and_partial;
        Alcotest.test_case "deterministic" `Quick mutate_deterministic;
        Alcotest.test_case "shapes validate" `Quick shapes_validate;
        Alcotest.test_case "spec structure bytes" `Quick spec_structure_bytes;
        Alcotest.test_case "spec modified-lists bytes" `Quick
          spec_modified_lists_bytes;
        Alcotest.test_case "spec last-only bytes" `Quick spec_last_only_bytes;
        Alcotest.test_case "guard accepts conforming" `Quick
          guard_accepts_conforming_config;
        Alcotest.test_case "guard catches violation" `Quick
          guard_catches_nonconforming_mutation;
        Alcotest.test_case "chain recovery" `Quick full_chain_recovery ] ) ]
