open Ickpt_backend
open Ickpt_synth

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg =
  { Synth.default_config with
    Synth.n_structures = 25;
    list_len = 3;
    n_int_fields = 2;
    pct_modified = 50;
    seed = 7 }

(* Run a fresh identically-seeded population through [runner]; identical
   builds give identical ids, so outputs are byte-comparable. *)
let bytes_of runner_of =
  let t = Synth.build cfg in
  Synth.base_checkpoint t;
  ignore (Synth.mutate_round t);
  let d = Ickpt_stream.Out_stream.create () in
  runner_of t d;
  Ickpt_stream.Out_stream.contents d

let generic_bytes backend =
  bytes_of (fun t d ->
      List.iter (fun r -> backend.Backend.run_generic d r) (Synth.roots t))

let specialized_bytes backend =
  bytes_of (fun t d ->
      let runner =
        backend.Backend.specialize (Jspec.Pe.specialize (Synth.shape_structure t))
      in
      List.iter (fun r -> runner d r) (Synth.roots t))

let reference_bytes () =
  bytes_of (fun t d ->
      List.iter (Ickpt_core.Checkpointer.incremental d) (Synth.roots t))

let backends_agree_generic () =
  let reference = reference_bytes () in
  List.iter
    (fun b ->
      check_bool (b.Backend.name ^ " generic bytes") true
        (generic_bytes b = reference))
    Backend.all

let backends_agree_specialized () =
  let reference = reference_bytes () in
  List.iter
    (fun b ->
      check_bool (b.Backend.name ^ " specialized bytes") true
        (specialized_bytes b = reference))
    Backend.all

let find_backends () =
  check_bool "find interp" true (Backend.find "interp" == Backend.interp);
  check_bool "find native" true (Backend.find "native" == Backend.native);
  check_int "three backends" 3 (List.length Backend.all);
  match Backend.find "missing" with
  | _ -> Alcotest.fail "found nonexistent backend"
  | exception Not_found -> ()

let dispatch_instrumentation () =
  let before = Backend.dispatch_count () in
  ignore (generic_bytes Backend.native);
  let after_native = Backend.dispatch_count () in
  (* Two virtual calls (record on modified + fold on all) per visited
     object; at least one per object. *)
  check_bool "native generic dispatches" true (after_native > before);
  let miss_before = Backend.ic_miss_count () in
  ignore (generic_bytes Backend.inline_cache);
  check_bool "ic dispatches counted" true (Backend.dispatch_count () > after_native);
  (* The synthetic population alternates Compound/Element receivers, so
     there are misses, but far fewer than dispatches. *)
  let misses = Backend.ic_miss_count () - miss_before in
  check_bool "some ic misses" true (misses > 0)

let specialized_faster_than_interp_generic () =
  (* A coarse sanity check of the cost model: compiled specialized code
     must beat AST-interpreted generic code on the same workload. *)
  let time_of runner_of =
    let t = Synth.build { cfg with Synth.n_structures = 400 } in
    Synth.base_checkpoint t;
    ignore (Synth.mutate_round t);
    let roots = Synth.roots t in
    let runner = runner_of t in
    let d = Ickpt_stream.Out_stream.sink () in
    let (), s =
      Ickpt_harness.Clock.time (fun () ->
          List.iter (fun r -> runner d r) roots)
    in
    s
  in
  let interp_generic =
    time_of (fun _ d o -> Backend.interp.Backend.run_generic d o)
  in
  let native_spec =
    time_of (fun t ->
        Backend.native.Backend.specialize
          (Jspec.Pe.specialize (Synth.shape_structure t)))
  in
  check_bool "native specialized beats interpreted generic" true
    (native_spec < interp_generic)

let suites =
  [ ( "backend",
      [ Alcotest.test_case "agree on generic bytes" `Quick
          backends_agree_generic;
        Alcotest.test_case "agree on specialized bytes" `Quick
          backends_agree_specialized;
        Alcotest.test_case "find" `Quick find_backends;
        Alcotest.test_case "dispatch instrumentation" `Quick
          dispatch_instrumentation;
        Alcotest.test_case "cost model sanity" `Quick
          specialized_faster_than_interp_generic ] ) ]
