test/test_minic.ml: Alcotest Ast Check Gen Interp Lexer List Minic Parser Pp Printexc QCheck2 QCheck_alcotest
