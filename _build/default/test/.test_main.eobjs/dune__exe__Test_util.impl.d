test/test_util.ml: Array Barrier Hashtbl Heap Ickpt_core Ickpt_runtime Ickpt_stream List Model Option QCheck2 Schema String
