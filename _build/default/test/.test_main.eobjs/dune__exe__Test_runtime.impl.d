test/test_runtime.ml: Alcotest Array Barrier Deep_eq Heap Ickpt_runtime Ickpt_stream List Model Option QCheck2 QCheck_alcotest Schema String Test_util
