test/test_main.ml: Alcotest Test_analysis Test_backend Test_core Test_extras Test_jspec Test_minic Test_more Test_runtime Test_stream Test_synth
