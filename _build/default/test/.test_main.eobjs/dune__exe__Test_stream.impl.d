test/test_stream.ml: Alcotest Buffer Bytes Char Crc32 Ickpt_stream In_stream List Out_stream Printf QCheck2 QCheck_alcotest String Varint
