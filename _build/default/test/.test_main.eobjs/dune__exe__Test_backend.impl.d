test/test_backend.ml: Alcotest Backend Ickpt_backend Ickpt_core Ickpt_harness Ickpt_stream Ickpt_synth Jspec List Synth
