test/test_analysis.ml: Alcotest Attrs Bta_phase Decls Engine Eta_phase Filename Ickpt_analysis Ickpt_core Ickpt_runtime Jspec List Minic Option Sea Sys
