test/test_synth.ml: Alcotest Array Barrier Deep_eq Heap Ickpt_core Ickpt_runtime Ickpt_stream Ickpt_synth Jspec List Model Synth
