open Ickpt_runtime
open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let schema_layout () =
  let env = make_env () in
  check_int "leaf ints" 1 env.leaf.Model.n_ints;
  check_int "leaf children" 0 env.leaf.Model.n_children;
  check_int "pair ints" 2 env.pair.Model.n_ints;
  check_int "node total ints" 3 env.node.Model.n_ints;
  check_int "node total children" 3 env.node.Model.n_children;
  check_int "node own ints" 1 env.node.Model.own_ints;
  check_int "klass count" 3 (Schema.count env.schema);
  check_bool "find by kid" true
    (Schema.find env.schema env.pair.Model.kid == env.pair);
  check_bool "find by name" true
    (Schema.find_name env.schema "Node" == env.node)

let schema_duplicate () =
  let env = make_env () in
  match Schema.declare env.schema ~name:"Leaf" ~ints:0 ~children:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let schema_iter_order () =
  let env = make_env () in
  let names = ref [] in
  Schema.iter env.schema (fun k -> names := k.Model.kname :: !names);
  Alcotest.(check (list string))
    "declaration order" [ "Leaf"; "Pair"; "Node" ] (List.rev !names)

let alloc_basics () =
  let env = make_env () in
  let a = Heap.alloc env.heap env.leaf in
  let b = Heap.alloc env.heap env.pair in
  check_bool "fresh modified" true a.Model.info.Model.modified;
  check_int "distinct ids" 1 (b.Model.info.Model.id - a.Model.info.Model.id);
  check_int "heap count" 2 (Heap.count env.heap);
  check_bool "find" true
    (match Heap.find env.heap a.Model.info.Model.id with
    | Some o -> o == a
    | None -> false);
  check_bool "find missing" true (Option.is_none (Heap.find env.heap 999));
  check_int "zeroed ints" 0 b.Model.ints.(0);
  check_bool "null children" true (Option.is_none b.Model.children.(0))

let alloc_with_id_checks () =
  let env = make_env () in
  let o = Heap.alloc_with_id env.heap env.leaf ~id:41 ~modified:false in
  check_bool "flag honoured" false o.Model.info.Model.modified;
  check_int "next_id advanced" 42 (Heap.next_id env.heap);
  (match Heap.alloc_with_id env.heap env.leaf ~id:41 ~modified:false with
  | _ -> Alcotest.fail "duplicate id accepted"
  | exception Invalid_argument _ -> ());
  match Heap.alloc_with_id env.heap env.leaf ~id:(-3) ~modified:false with
  | _ -> Alcotest.fail "negative id accepted"
  | exception Invalid_argument _ -> ()

let barrier_sets_flag () =
  let env = make_env () in
  let o = Heap.alloc env.heap env.pair in
  o.Model.info.Model.modified <- false;
  Barrier.set_int o 0 7;
  check_bool "flag set" true o.Model.info.Model.modified;
  check_int "value stored" 7 (Barrier.get_int o 0);
  o.Model.info.Model.modified <- false;
  let changed = Barrier.set_int_if_changed o 0 7 in
  check_bool "unchanged write" false changed;
  check_bool "flag untouched" false o.Model.info.Model.modified;
  let changed = Barrier.set_int_if_changed o 0 8 in
  check_bool "changed write" true changed;
  check_bool "flag set again" true o.Model.info.Model.modified

let barrier_children () =
  let env = make_env () in
  let parent = Heap.alloc env.heap env.pair in
  let child = Heap.alloc env.heap env.leaf in
  parent.Model.info.Model.modified <- false;
  Barrier.set_child parent 0 (Some child);
  check_bool "flag set" true parent.Model.info.Model.modified;
  check_bool "stored" true
    (match Barrier.get_child parent 0 with
    | Some c -> c == child
    | None -> false);
  parent.Model.info.Model.modified <- false;
  check_bool "same child no-op" false
    (Barrier.set_child_if_changed parent 0 (Some child));
  check_bool "null change" true (Barrier.set_child_if_changed parent 0 None)

let barrier_trace () =
  let env = make_env () in
  let o = Heap.alloc env.heap env.pair in
  let hits = ref [] in
  Barrier.with_trace
    (fun o -> hits := o.Model.info.Model.id :: !hits)
    (fun () ->
      Barrier.set_int o 0 1;
      Barrier.touch o);
  check_int "two traced writes" 2 (List.length !hits);
  (* Hook must be uninstalled afterwards. *)
  Barrier.set_int o 1 2;
  check_int "no trace outside" 2 (List.length !hits)

let heap_modified_count () =
  let env = make_env () in
  let a = Heap.alloc env.heap env.leaf in
  let _b = Heap.alloc env.heap env.leaf in
  check_int "both fresh-modified" 2 (Heap.modified_count env.heap);
  Heap.clear_all_modified env.heap;
  check_int "cleared" 0 (Heap.modified_count env.heap);
  Barrier.touch a;
  check_int "one touched" 1 (Heap.modified_count env.heap)

let is_instance_hierarchy () =
  let env = make_env () in
  let n = Heap.alloc env.heap env.node in
  let p = Heap.alloc env.heap env.pair in
  check_bool "node is node" true (Model.is_instance n env.node);
  check_bool "node is pair" true (Model.is_instance n env.pair);
  check_bool "pair not node" false (Model.is_instance p env.node);
  check_bool "pair not leaf" false (Model.is_instance p env.leaf)

let default_record_layout () =
  let env = make_env () in
  let child = Heap.alloc env.heap env.leaf in
  let o = Heap.alloc env.heap env.pair in
  o.Model.ints.(0) <- 10;
  o.Model.ints.(1) <- 20;
  o.Model.children.(0) <- Some child;
  let d = Ickpt_stream.Out_stream.create () in
  Model.record o d;
  let inp = Ickpt_stream.In_stream.of_string (Ickpt_stream.Out_stream.contents d) in
  check_int "int slot 0" 10 (Ickpt_stream.In_stream.read_int inp);
  check_int "int slot 1" 20 (Ickpt_stream.In_stream.read_int inp);
  check_int "child id" child.Model.info.Model.id
    (Ickpt_stream.In_stream.read_int inp);
  check_int "null child" Model.null_id (Ickpt_stream.In_stream.read_int inp);
  check_bool "nothing else" true (Ickpt_stream.In_stream.at_end inp)

let default_fold_visits () =
  let env = make_env () in
  let c1 = Heap.alloc env.heap env.leaf in
  let c2 = Heap.alloc env.heap env.leaf in
  let o = Heap.alloc env.heap env.node in
  o.Model.children.(0) <- Some c1;
  o.Model.children.(2) <- Some c2;
  let visited = ref [] in
  Model.fold o (fun c -> visited := c.Model.info.Model.id :: !visited);
  Alcotest.(check (list int))
    "children in slot order"
    [ c1.Model.info.Model.id; c2.Model.info.Model.id ]
    (List.rev !visited)

let virtual_override () =
  let env = make_env () in
  (* Overriding the vtable slot changes behaviour for all instances: that is
     what makes the calls "virtual" and what specialization removes. *)
  let o = Heap.alloc env.heap env.leaf in
  let saved = env.leaf.Model.record_m in
  env.leaf.Model.record_m <-
    (fun _ d -> Ickpt_stream.Out_stream.write_int d 777);
  let d = Ickpt_stream.Out_stream.create () in
  Model.record o d;
  env.leaf.Model.record_m <- saved;
  let inp = Ickpt_stream.In_stream.of_string (Ickpt_stream.Out_stream.contents d) in
  check_int "override used" 777 (Ickpt_stream.In_stream.read_int inp)

let deep_eq_detects () =
  let env = make_env () in
  let build () =
    build env
      (Pair (1, 2, Some (Leaf 3), Some (Node (4, 5, 6, Some (Leaf 7), None, None))))
  in
  let a = build () in
  let b = build () in
  Alcotest.(check bool) "equal copies" true (Deep_eq.equal a b);
  (* Scalar difference *)
  (match b.Model.children.(0) with
  | Some leaf -> leaf.Model.ints.(0) <- 99
  | None -> Alcotest.fail "missing child");
  (match Deep_eq.compare_graphs a b with
  | Some m ->
      Alcotest.(check bool) "path names the slot" true
        (String.length m.Deep_eq.path > 0)
  | None -> Alcotest.fail "difference not detected");
  (* Structural difference *)
  let c = build () in
  c.Model.children.(1) <- None;
  Alcotest.(check bool) "child removal detected" false (Deep_eq.equal a c)

let deep_eq_shared_substructure () =
  let env = make_env () in
  let shared = build env (Leaf 5) in
  let mk () =
    let o = Heap.alloc env.heap env.pair in
    o.Model.children.(0) <- Some shared;
    o.Model.children.(1) <- Some shared;
    o
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "dag equal" true (Deep_eq.equal a b)

let prop_deep_eq_reflexive =
  QCheck2.Test.make ~name:"deep_eq is reflexive on random graphs" ~count:100
    tree_gen (fun t ->
      let env = make_env () in
      let root = build env t in
      Deep_eq.equal root root)

let prop_build_then_mutate_differs =
  QCheck2.Test.make ~name:"a dirtying int mutation breaks deep equality"
    ~count:100
    QCheck2.Gen.(pair tree_gen mutation_gen)
    (fun (t, m) ->
      let env = make_env () in
      let a = build env t in
      let b = build env t in
      (* Note flags: both copies are fresh so flags agree. *)
      let objs = Array.of_list (all_objects b) in
      let o = objs.(m.victim mod Array.length objs) in
      let n = Array.length o.Model.ints in
      if n = 0 then QCheck2.assume_fail ()
      else begin
        let slot = m.slot mod n in
        let changed = Barrier.set_int_if_changed o slot m.value in
        QCheck2.assume changed;
        not (Deep_eq.equal a b)
      end)

let suites =
  [ ( "runtime",
      [ Alcotest.test_case "schema layout" `Quick schema_layout;
        Alcotest.test_case "schema duplicate" `Quick schema_duplicate;
        Alcotest.test_case "schema iter order" `Quick schema_iter_order;
        Alcotest.test_case "alloc basics" `Quick alloc_basics;
        Alcotest.test_case "alloc_with_id checks" `Quick alloc_with_id_checks;
        Alcotest.test_case "barrier sets flag" `Quick barrier_sets_flag;
        Alcotest.test_case "barrier children" `Quick barrier_children;
        Alcotest.test_case "barrier trace" `Quick barrier_trace;
        Alcotest.test_case "heap modified count" `Quick heap_modified_count;
        Alcotest.test_case "is_instance" `Quick is_instance_hierarchy;
        Alcotest.test_case "default record layout" `Quick default_record_layout;
        Alcotest.test_case "default fold visits" `Quick default_fold_visits;
        Alcotest.test_case "virtual override" `Quick virtual_override;
        Alcotest.test_case "deep_eq detects" `Quick deep_eq_detects;
        Alcotest.test_case "deep_eq shared substructure" `Quick
          deep_eq_shared_substructure;
        QCheck_alcotest.to_alcotest prop_deep_eq_reflexive;
        QCheck_alcotest.to_alcotest prop_build_then_mutate_differs ] ) ]
